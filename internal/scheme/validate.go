package scheme

import "fmt"

// InvalidConfigError reports a Config rejected by Validate before any
// backend construction ran: Field names the offending knob (or knob
// combination) and Reason says what about its value is impossible. It is a
// typed error so callers building configs from untrusted input (the serving
// layer, CLIs) can distinguish "your parameters are wrong" from backend
// construction failures:
//
//	var cfgErr *scheme.InvalidConfigError
//	if errors.As(err, &cfgErr) { http.Error(w, cfgErr.Error(), 400) }
type InvalidConfigError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *InvalidConfigError) Error() string {
	return fmt.Sprintf("scheme: invalid config: %s %s", e.Field, e.Reason)
}

// Validate checks the scheme-independent invariants every backend relies
// on: positive topology, K ≤ N, non-negative budgets that leave the code a
// chance (S+M erasures/corruptions must fit in the N−K redundancy), a
// positive computation degree, non-negative verification trials, and a
// sane latency model. Backends still enforce their own tighter feasibility
// bounds (eq. 1 / eq. 2 scale with T and deg f); Validate rejects what no
// backend could ever accept, with a typed *InvalidConfigError naming the
// offending field.
//
// The envelope is deliberately uniform across schemes — a Config valid for
// one registered name is valid for all, which is what keeps cross-scheme
// comparisons honest. That includes the uncoded baseline: a no-redundancy
// deployment must SAY so (WithCoding(k, k) with WithBudgets(0, 0, 0)),
// not carry default fault budgets no deployment of it could honour.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return &InvalidConfigError{"N", fmt.Sprintf("= %d, need at least one worker", c.N)}
	case c.K < 1:
		return &InvalidConfigError{"K", fmt.Sprintf("= %d, need at least one data block", c.K)}
	case c.K > c.N:
		return &InvalidConfigError{"K", fmt.Sprintf("= %d exceeds N = %d: the code dimension cannot exceed the worker count", c.K, c.N)}
	case c.S < 0:
		return &InvalidConfigError{"S", fmt.Sprintf("= %d, the straggler budget cannot be negative", c.S)}
	case c.M < 0:
		return &InvalidConfigError{"M", fmt.Sprintf("= %d, the Byzantine budget cannot be negative", c.M)}
	case c.T < 0:
		return &InvalidConfigError{"T", fmt.Sprintf("= %d, the privacy budget cannot be negative", c.T)}
	case c.S+c.M > c.N-c.K:
		return &InvalidConfigError{"S+M", fmt.Sprintf("= %d exceeds the N-K = %d redundant workers: no code can absorb more faults than it has redundancy", c.S+c.M, c.N-c.K)}
	case c.DegF < 1:
		return &InvalidConfigError{"DegF", fmt.Sprintf("= %d, the computation degree must be at least 1", c.DegF)}
	case c.VerifyTrials < 0:
		return &InvalidConfigError{"VerifyTrials", fmt.Sprintf("= %d, the amplification factor cannot be negative", c.VerifyTrials)}
	case c.Shards < 0:
		return &InvalidConfigError{"Shards", fmt.Sprintf("= %d, the shard-group count cannot be negative (0 or 1 means a single group)", c.Shards)}
	case c.Receipts && c.T > 0:
		return &InvalidConfigError{"Receipts", fmt.Sprintf("requires T = 0, got T = %d: privacy-masked shards cannot be opened against the public matrix digest", c.T)}
	case !c.Sim.Validate():
		return &InvalidConfigError{"Sim", "is not a valid latency model (rates must be positive)"}
	}
	if c.Rebalance != nil {
		if err := c.Rebalance.Validate(); err != nil {
			return &InvalidConfigError{"Rebalance", err.Error()}
		}
	}
	return nil
}
