package scheme

// The batched-round conformance property: for every registered scheme, ONE
// RunRoundBatch over B inputs decodes bit-exactly what B sequential
// RunRound calls decode. This is the contract the serving layer is built
// on — coalescing requests into one coded round must be invisible to every
// caller — and it must survive Byzantine workers (the stacked verification
// filters them per round exactly as the per-vector check does).

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
)

// batchCase describes one scheme's deployment for the property test.
type batchCase struct {
	scheme string
	n, k   int
	key    string
	// byzantine optionally marks one worker Byzantine (schemes with
	// per-worker verification or error correction must still be exact).
	byzantine bool
}

func batchCases() []batchCase {
	return []batchCase{
		{scheme: "avcc", n: 12, k: 9, key: "fwd", byzantine: true},
		{scheme: "static-vcc", n: 12, k: 9, key: "fwd", byzantine: true},
		{scheme: "lcc", n: 12, k: 9, key: "fwd", byzantine: true},
		{scheme: "uncoded", n: 12, k: 9, key: "fwd"},
		{scheme: "gavcc", n: 10, k: 4, key: gavcc.GramKey},
	}
}

// buildBatchMaster constructs a fresh master for tc with a fixed seed so
// the sequential and batched runs face identical deployments.
func buildBatchMaster(t *testing.T, tc batchCase, x *fieldmat.Matrix) Master {
	t.Helper()
	var behaviors []attack.Behavior
	if tc.byzantine {
		n, err := WorkerCount(tc.scheme, NewConfig(WithCoding(tc.n, tc.k)))
		if err != nil {
			t.Fatal(err)
		}
		behaviors = make([]attack.Behavior, n)
		for i := range behaviors {
			behaviors[i] = attack.Honest{}
		}
		behaviors[tc.n-1] = attack.ReverseValue{C: 3}
	}
	m, err := New(tc.scheme, f, NewConfig(
		WithCoding(tc.n, tc.k),
		WithBudgets(1, 1, 0),
		WithSeed(21),
	), map[string]*fieldmat.Matrix{tc.key: x}, behaviors, nil)
	if err != nil {
		t.Fatalf("%s: %v", tc.scheme, err)
	}
	return m
}

func TestBatchedRoundBitExactWithSequentialRounds(t *testing.T) {
	const batch = 5
	for _, tc := range batchCases() {
		t.Run(tc.scheme, func(t *testing.T) {
			rng := rand.New(rand.NewSource(22))
			var x *fieldmat.Matrix
			if tc.key == gavcc.GramKey {
				x = fieldmat.Rand(f, rng, 24, 16)
			} else {
				x = fieldmat.Rand(f, rng, 45, 12)
			}
			inputs := make([][]field.Elem, batch)
			for c := range inputs {
				if tc.key != gavcc.GramKey {
					inputs[c] = f.RandVec(rng, x.Cols)
				}
			}

			// Sequential reference: a fresh master, one RunRound per input,
			// all at iter 0 (exactly the round the batch runs once).
			seq := buildBatchMaster(t, tc, x)
			want := make([][]field.Elem, batch)
			for c, in := range inputs {
				out, err := seq.RunRound(context.Background(), tc.key, in, 0)
				if err != nil {
					t.Fatalf("sequential round %d: %v", c, err)
				}
				want[c] = out.Decoded
			}

			// Batched run on an identically-seeded fresh master.
			bm := buildBatchMaster(t, tc, x)
			got, err := bm.RunRoundBatch(context.Background(), tc.key, inputs, 0)
			if err != nil {
				t.Fatalf("batched round: %v", err)
			}
			if len(got.Outputs) != batch {
				t.Fatalf("batched round returned %d outputs, want %d", len(got.Outputs), batch)
			}
			for c := range inputs {
				if !field.EqualVec(got.Outputs[c], want[c]) {
					t.Fatalf("batch entry %d decodes differently from its sequential round", c)
				}
			}
			if tc.byzantine {
				switch tc.scheme {
				case "avcc", "static-vcc":
					// Per-worker verification: the Byzantine never enters
					// the decode set.
					for _, id := range got.Used {
						if id == tc.n-1 {
							t.Fatal("Byzantine worker contributed to the batched decode")
						}
					}
				case "lcc":
					// LCC waits for it (Used = waited-for workers) but the
					// stacked Reed–Solomon decode must still locate it.
					found := false
					for _, id := range got.Byzantine {
						if id == tc.n-1 {
							found = true
						}
					}
					if !found {
						t.Fatal("batched LCC decode failed to locate the Byzantine worker")
					}
				}
			}
		})
	}
}

// TestBatchedRoundRejectsRaggedInputs pins the packing contract.
func TestBatchedRoundRejectsRaggedInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := fieldmat.Rand(f, rng, 36, 10)
	m, err := New("avcc", f, NewConfig(WithSeed(24)), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ragged := [][]field.Elem{f.RandVec(rng, 10), f.RandVec(rng, 9)}
	if _, err := m.RunRoundBatch(context.Background(), "fwd", ragged, 0); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if _, err := m.RunRoundBatch(context.Background(), "fwd", nil, 0); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestRunRoundIsTheBatchOfOne: the single-vector path must be the exact
// batch-of-one projection (same decode, same accounting).
func TestRunRoundIsTheBatchOfOne(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x := fieldmat.Rand(f, rng, 36, 10)
	in := f.RandVec(rng, 10)
	mk := func() Master {
		m, err := New("avcc", f, NewConfig(WithSeed(26)), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	single, err := mk().RunRound(context.Background(), "fwd", in, 0)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := mk().RunRoundBatch(context.Background(), "fwd", [][]field.Elem{in}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(single.Decoded, batched.Outputs[0]) {
		t.Fatal("batch-of-one decodes differently from RunRound")
	}
	if single.Breakdown != batched.Breakdown {
		t.Fatalf("batch-of-one breakdown %v differs from RunRound's %v", batched.Breakdown, single.Breakdown)
	}
}
