package scheme

// The receipts conformance axis: with the committed-verification plane on,
// every registered scheme's rounds must carry a receipt that verifies
// offline exactly when the decode is bit-exact — across the steady and
// adversarial-wave scenario profiles and across 1- and 2-group shard
// deployments (where the fleet receipt is the fold of the group receipts).
// The converse direction is the tamper suite below: when corrupt results DO
// flow into the decode (the uncoded baseline, LCC's over-budget fallback),
// receipt verification must fail and name the offending workers — and never
// an honest one.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scenario"
)

// receiptConfig is the shared deployment configuration of the receipts axis.
func receiptConfig(tc conformanceCase, extra ...Option) Config {
	opts := append([]Option{
		WithCoding(tc.n, tc.k),
		WithBudgets(1, 1, 0),
		WithSim(conformanceSim()),
		WithSeed(conformanceSeed),
		WithReceipts(true),
		WithDeterministicKeys(true),
	}, extra...)
	return NewConfig(opts...)
}

func receiptMatrix(t *testing.T, f *field.Field, rng *rand.Rand, tc conformanceCase) *fieldmat.Matrix {
	t.Helper()
	if tc.key == gavcc.GramKey {
		return fieldmat.Rand(f, rng, 64, 48)
	}
	return fieldmat.Rand(f, rng, 720, 120)
}

// runReceiptRounds drives one (scheme, profile, shards) cell and asserts the
// forward direction of the receipt contract: bit-exact decode ⇒ receipt
// present, bound to the deployment's published digest, and verifying.
func runReceiptRounds(t *testing.T, tc conformanceCase, profile string, shards, rounds int) {
	t.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(conformanceSeed))
	x := receiptMatrix(t, f, rng, tc)
	scn, err := scenario.Profile(profile, tc.n, tc.k, conformanceSeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(tc.scheme, f, receiptConfig(tc, WithScenario(scn), WithShards(shards)), tc.data(x), nil, nil)
	if err != nil {
		t.Fatalf("%s under %s x%d: %v", tc.scheme, profile, shards, err)
	}
	dp, ok := m.(commit.DigestProvider)
	if !ok {
		t.Fatalf("%s master does not expose ReceiptDigests", tc.scheme)
	}
	digests := dp.ReceiptDigests()
	if digests == nil || len(digests[tc.key]) == 0 {
		t.Fatalf("%s: no published digest for key %q", tc.scheme, tc.key)
	}
	published := commit.FoldDigests(digests[tc.key])

	for iter := 0; iter < rounds; iter++ {
		in := tc.input(f, rng, x)
		out, err := m.RunRound(context.Background(), tc.key, in, iter)
		if err != nil {
			t.Fatalf("%s under %s x%d, iter %d: %v", tc.scheme, profile, shards, iter, err)
		}
		if want := tc.want(f, x, in, tc.k); !field.EqualVec(out.Decoded, want) {
			t.Fatalf("%s under %s x%d, iter %d: decode not bit-exact", tc.scheme, profile, shards, iter)
		}
		if out.Receipt == nil {
			t.Fatalf("%s under %s x%d, iter %d: bit-exact round carried no receipt", tc.scheme, profile, shards, iter)
		}
		if got := len(out.Receipt.Groups); got != max(shards, 1) {
			t.Fatalf("%s x%d: receipt has %d groups", tc.scheme, shards, got)
		}
		if err := out.Receipt.Verify(); err != nil {
			t.Fatalf("%s under %s x%d, iter %d: receipt for a bit-exact decode rejected: %v",
				tc.scheme, profile, shards, iter, err)
		}
		if got := out.Receipt.FoldedDigest(); got != published {
			t.Fatalf("%s x%d: receipt digest %s, deployment publishes %s", tc.scheme, shards, got, published)
		}
		m.FinishIteration(iter)
	}
}

func TestReceiptConformanceAllSchemes(t *testing.T) {
	const rounds = 4
	for _, tc := range conformanceCases() {
		for _, profile := range []string{scenario.Steady, scenario.AdversarialWave} {
			for _, shards := range []int{1, 2} {
				tc, profile, shards := tc, profile, shards
				t.Run(fmt.Sprintf("%s/%s/shards=%d", tc.scheme, profile, shards), func(t *testing.T) {
					runReceiptRounds(t, tc, profile, shards, rounds)
				})
			}
		}
	}
}

// TestReceiptVerifiesWithCaughtByzantine: when a scheme's own verification
// catches and excludes a Byzantine worker, the decode stays bit-exact and the
// receipt — which attests only the consumed contributions — must verify, with
// the caught worker absent from it.
func TestReceiptVerifiesWithCaughtByzantine(t *testing.T) {
	for _, name := range []string{"avcc", "static-vcc", "lcc"} {
		t.Run(name, func(t *testing.T) {
			tc := matvecCase(name)
			f := field.Default()
			rng := rand.New(rand.NewSource(conformanceSeed))
			x := receiptMatrix(t, f, rng, tc)
			behaviors := make([]attack.Behavior, tc.n)
			for i := range behaviors {
				behaviors[i] = attack.Honest{}
			}
			behaviors[3] = attack.ReverseValue{}
			m, err := New(name, f, receiptConfig(tc), tc.data(x), behaviors, nil)
			if err != nil {
				t.Fatal(err)
			}
			in := tc.input(f, rng, x)
			out, err := m.RunRound(context.Background(), tc.key, in, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, tc.want(f, x, in, tc.k)) {
				t.Fatalf("%s: one in-budget Byzantine worker corrupted the decode", name)
			}
			if err := out.Receipt.Verify(); err != nil {
				t.Fatalf("%s: receipt for a corrected round rejected: %v", name, err)
			}
			for _, w := range out.Receipt.Groups[0].Workers {
				if w.ID == 3 {
					t.Fatalf("%s: the caught Byzantine worker appears in the receipt", name)
				}
			}
		})
	}
}

// TestReceiptIdentifiesTamperedUncoded: the uncoded baseline has no
// verification of its own — a Byzantine block flows straight into the output
// — so the receipt is the tenant's only detector, and it must name exactly
// the tampering worker.
func TestReceiptIdentifiesTamperedUncoded(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(3))
	x := fieldmat.Rand(f, rng, 40, 16)
	behaviors := []attack.Behavior{attack.Honest{}, attack.Honest{}, attack.Constant{V: 5}, attack.Honest{}}
	m, err := New("uncoded", f, NewConfig(
		WithCoding(4, 4), WithBudgets(0, 0, 0), WithSeed(3), WithReceipts(true),
	), map[string]*fieldmat.Matrix{"fwd": x}, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := f.RandVec(rng, x.Cols)
	out, err := m.RunRound(context.Background(), "fwd", in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
		t.Fatal("the constant attack did not corrupt the uncoded output (test setup broken)")
	}
	var bad *commit.BadWorkersError
	if err := out.Receipt.Verify(); !errors.As(err, &bad) {
		t.Fatalf("want BadWorkersError for the tampered round, got %v", err)
	}
	if len(bad.Workers) != 1 || bad.Workers[0] != (commit.WorkerRef{Group: 0, Worker: 2}) {
		t.Fatalf("want exactly worker {0 2} identified, got %v", bad.Workers)
	}
}

// TestReceiptIdentifiesTamperedLCCFallback: four corrupt workers overwhelm
// LCC's M = 1 correction budget, forcing the erasure-only fallback that lets
// corrupt contributions through — the paper's overloaded-LCC failure mode.
// The receipt must reject the round and every flagged worker must actually
// be corrupt.
func TestReceiptIdentifiesTamperedLCCFallback(t *testing.T) {
	f := field.Default()
	rng := rand.New(rand.NewSource(5))
	x := fieldmat.Rand(f, rng, 72, 16)
	corrupt := map[int]bool{1: true, 4: true, 7: true, 10: true}
	behaviors := make([]attack.Behavior, 12)
	for i := range behaviors {
		if corrupt[i] {
			behaviors[i] = attack.ReverseValue{}
		} else {
			behaviors[i] = attack.Honest{}
		}
	}
	m, err := New("lcc", f, NewConfig(
		WithCoding(12, 9), WithBudgets(1, 1, 0), WithSeed(5), WithReceipts(true),
	), map[string]*fieldmat.Matrix{"fwd": x}, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := f.RandVec(rng, x.Cols)
	out, err := m.RunRound(context.Background(), "fwd", in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, in)) {
		t.Fatal("the over-budget round decoded bit-exact (test setup broken: fallback never engaged?)")
	}
	var bad *commit.BadWorkersError
	if err := out.Receipt.Verify(); !errors.As(err, &bad) {
		t.Fatalf("want BadWorkersError for the fallback round, got %v", err)
	}
	if len(bad.Workers) == 0 {
		t.Fatal("no workers identified")
	}
	for _, w := range bad.Workers {
		if w.Group != 0 || !corrupt[w.Worker] {
			t.Errorf("honest worker %v flagged", w)
		}
	}
}

// TestBatchedRoundSharesOneReceipt: a coalesced round issues ONE receipt
// covering every batch column, and each projected RoundOutput points at its
// own column.
func TestBatchedRoundSharesOneReceipt(t *testing.T) {
	tc := matvecCase("avcc")
	f := field.Default()
	rng := rand.New(rand.NewSource(conformanceSeed))
	x := receiptMatrix(t, f, rng, tc)
	m, err := New("avcc", f, receiptConfig(tc), tc.data(x), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]field.Elem{tc.input(f, rng, x), tc.input(f, rng, x), tc.input(f, rng, x)}
	out, err := m.RunRoundBatch(context.Background(), tc.key, inputs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Receipt == nil || out.Receipt.Batch != len(inputs) {
		t.Fatalf("want one receipt with Batch = %d, got %+v", len(inputs), out.Receipt)
	}
	if err := out.Receipt.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		ro := out.Round(i)
		if ro.Receipt != out.Receipt || ro.ReceiptColumn != i {
			t.Fatalf("entry %d: receipt column %d (receipt shared: %v)", i, ro.ReceiptColumn, ro.Receipt == out.Receipt)
		}
	}
}
