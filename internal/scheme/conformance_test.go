package scheme

// The cross-backend scenario conformance suite: every registered scheme runs
// through every scenario preset, deterministically from one seed, and must
// keep decoding bit-exact against an independently computed reference. This
// is the contract the registry sells — backends are swappable — extended to
// the time-varying world: crashes, drops, slowdown waves, link degradation,
// and Byzantine flips may change *who the master waits for* and *what the
// code does about it*, but never the decoded output. The churn preset must
// additionally push AVCC's adaptation slack negative and provably trigger a
// re-code, observed through the Adaptive interface.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/gavcc"
	"repro/internal/scenario"
	"repro/internal/simnet"
)

const conformanceSeed = 7

// conformanceSim is a compute-dominated latency model: shard compute time
// must dwarf link time so the churn preset's slowdown wave is unambiguous
// to AVCC's relative-arrival straggler detector.
func conformanceSim() simnet.Config {
	sim := simnet.DefaultConfig()
	sim.LinkLatency = 1e-5
	return sim
}

// conformanceCase describes one scheme's deployment in the shared
// environment: its topology and how to compute the reference output the
// decode must match bit-exactly.
type conformanceCase struct {
	scheme string
	n, k   int
	key    string
	// data builds the scheme's input matrices from x.
	data func(x *fieldmat.Matrix) map[string]*fieldmat.Matrix
	// input produces the round's broadcast input (nil for gram rounds).
	input func(f *field.Field, rng *rand.Rand, x *fieldmat.Matrix) []field.Elem
	// want is the ground-truth output for the round's input.
	want func(f *field.Field, x *fieldmat.Matrix, in []field.Elem, k int) []field.Elem
}

func matvecCase(name string) conformanceCase {
	return conformanceCase{
		scheme: name, n: 12, k: 9, key: "fwd",
		data: func(x *fieldmat.Matrix) map[string]*fieldmat.Matrix {
			return map[string]*fieldmat.Matrix{"fwd": x}
		},
		input: func(f *field.Field, rng *rand.Rand, x *fieldmat.Matrix) []field.Elem {
			return f.RandVec(rng, x.Cols)
		},
		want: func(f *field.Field, x *fieldmat.Matrix, in []field.Elem, _ int) []field.Elem {
			return fieldmat.MatVec(f, x, in)
		},
	}
}

func gramWant(f *field.Field, x *fieldmat.Matrix, _ []field.Elem, k int) []field.Elem {
	blocks := fieldmat.SplitRows(fieldmat.PadRows(x, k), k)
	var out []field.Elem
	for _, b := range blocks {
		out = append(out, fieldmat.MatMul(f, b, b.Transpose()).Data...)
	}
	return out
}

func conformanceCases() []conformanceCase {
	gram := conformanceCase{
		// The degree-2 Gram backend needs its own feasible topology:
		// N >= 2(K+T-1) + S + M + 1 pins (10, 4) with S = M = 1.
		scheme: "gavcc", n: 10, k: 4, key: gavcc.GramKey,
		data: func(x *fieldmat.Matrix) map[string]*fieldmat.Matrix {
			return map[string]*fieldmat.Matrix{gavcc.GramKey: x}
		},
		input: func(*field.Field, *rand.Rand, *fieldmat.Matrix) []field.Elem { return nil },
		want:  gramWant,
	}
	return []conformanceCase{
		matvecCase("avcc"), matvecCase("static-vcc"), matvecCase("lcc"), matvecCase("uncoded"), gram,
	}
}

// runConformance drives one (scheme, profile) cell for rounds iterations,
// asserting bit-exact decodes, and returns whether any re-code happened.
func runConformance(t *testing.T, tc conformanceCase, profile string, rounds int) (recoded bool, m Master) {
	t.Helper()
	f := field.Default()
	rng := rand.New(rand.NewSource(conformanceSeed))
	var x *fieldmat.Matrix
	if tc.key == gavcc.GramKey {
		x = fieldmat.Rand(f, rng, 64, 48)
	} else {
		// Sized so shard compute (80x120 mul-adds) dominates link time.
		x = fieldmat.Rand(f, rng, 720, 120)
	}
	scn, err := scenario.Profile(profile, tc.n, tc.k, conformanceSeed)
	if err != nil {
		t.Fatal(err)
	}
	m, err = New(tc.scheme, f, NewConfig(
		WithCoding(tc.n, tc.k),
		WithBudgets(1, 1, 0),
		WithSim(conformanceSim()),
		WithSeed(conformanceSeed),
		WithScenario(scn),
	), tc.data(x), nil, nil)
	if err != nil {
		t.Fatalf("%s under %s: %v", tc.scheme, profile, err)
	}
	for iter := 0; iter < rounds; iter++ {
		in := tc.input(f, rng, x)
		out, err := m.RunRound(context.Background(), tc.key, in, iter)
		if err != nil {
			t.Fatalf("%s under %s, iter %d: %v", tc.scheme, profile, iter, err)
		}
		if want := tc.want(f, x, in, tc.k); !field.EqualVec(out.Decoded, want) {
			t.Fatalf("%s under %s, iter %d: decode not bit-exact against the uncoded reference",
				tc.scheme, profile, iter)
		}
		if _, r := m.FinishIteration(iter); r {
			recoded = true
		}
	}
	return recoded, m
}

func TestScenarioConformanceAllSchemesAllProfiles(t *testing.T) {
	const rounds = 10
	for _, tc := range conformanceCases() {
		for _, profile := range scenario.Profiles() {
			tc, profile := tc, profile
			t.Run(tc.scheme+"/"+profile, func(t *testing.T) {
				recoded, m := runConformance(t, tc, profile, rounds)

				switch profile {
				case scenario.Steady:
					if recoded {
						t.Errorf("%s re-coded in the steady world", tc.scheme)
					}
				case scenario.Churn:
					if tc.scheme == "avcc" {
						if !recoded {
							t.Error("avcc must re-code when churn crosses the adaptation budget")
						}
						ad, ok := m.(Adaptive)
						if !ok {
							t.Fatal("avcc master does not expose the Adaptive interface")
						}
						if n, k := ad.Coding(); k >= 9 || n != 12 {
							t.Errorf("avcc after churn: coding (%d, %d), want K < 9 with all 12 workers active", n, k)
						}
					} else if recoded {
						t.Errorf("%s is static but reported a re-code", tc.scheme)
					}
				case scenario.AdversarialWave:
					if tc.scheme == "avcc" {
						ad := m.(Adaptive)
						if active := ad.ActiveWorkers(); len(active) >= 12 {
							t.Errorf("avcc after the Byzantine wave: %d active workers, want quarantines", len(active))
						}
					}
				}
			})
		}
	}
}

// TestScenarioConformanceIsDeterministic pins the whole suite to its seed:
// the same (scheme, profile, seed) cell re-run must make the identical
// adaptation decisions.
func TestScenarioConformanceIsDeterministic(t *testing.T) {
	tc := matvecCase("avcc")
	r1, m1 := runConformance(t, tc, scenario.Churn, 8)
	r2, m2 := runConformance(t, tc, scenario.Churn, 8)
	if r1 != r2 {
		t.Fatal("re-running the churn cell changed the re-code decision")
	}
	n1, k1 := m1.(Adaptive).Coding()
	n2, k2 := m2.(Adaptive).Coding()
	if n1 != n2 || k1 != k2 {
		t.Fatalf("re-running the churn cell changed the final coding: (%d,%d) vs (%d,%d)", n1, k1, n2, k2)
	}
}
