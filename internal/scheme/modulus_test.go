package scheme

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

func TestFieldForResolvesModuli(t *testing.T) {
	cases := []struct {
		name    string
		modulus uint64
		wantQ   uint64
	}{
		{"zero means the paper default", 0, field.QDefault},
		{"explicit paper modulus", field.QDefault, field.QDefault},
		{"ntt modulus", field.QNTT, field.QNTT},
		{"arbitrary prime", 97, 97},
	}
	for _, c := range cases {
		got, err := FieldFor(Config{Modulus: c.modulus})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got.Q() != c.wantQ {
			t.Errorf("%s: q = %d, want %d", c.name, got.Q(), c.wantQ)
		}
	}
	// The shipped moduli resolve to the shared instances (their NTT-plan
	// and decode caches live per Field).
	if got, _ := FieldFor(Config{Modulus: field.QNTT}); got != field.NTTFriendly() {
		t.Error("QNTT did not resolve to the shared NTT-friendly instance")
	}
	if got, _ := FieldFor(Config{}); got != field.Default() {
		t.Error("zero modulus did not resolve to the shared default instance")
	}
	if _, err := FieldFor(Config{Modulus: 1 << 20}); err == nil {
		t.Error("FieldFor accepted a composite modulus")
	}
}

// TestNewRejectsModulusMismatch pins the cross-check: a config pinned to one
// modulus must not silently construct a master over a different field.
func TestNewRejectsModulusMismatch(t *testing.T) {
	x := fieldmat.Rand(f, rand.New(rand.NewSource(5)), 18, 6)
	data := map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	_, err := New("avcc", f, NewConfig(WithModulus(field.QNTT)), data, nil, nil)
	var cfgErr *InvalidConfigError
	if !errors.As(err, &cfgErr) {
		t.Fatalf("got %v, want *InvalidConfigError", err)
	}
	if cfgErr.Field != "Modulus" {
		t.Fatalf("error names field %q, want Modulus", cfgErr.Field)
	}
}

// TestRoundOnNTTModulus runs one verified round end to end on the
// NTT-friendly field — the full protocol stack (encode, Freivalds verify,
// decode) over the fast-path codec's companion modulus.
func TestRoundOnNTTModulus(t *testing.T) {
	cfg := NewConfig(WithModulus(field.QNTT), WithSeed(7))
	nf, err := FieldFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := fieldmat.Rand(nf, rng, 36, 10)
	data := map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	m, err := New("avcc", nf, cfg, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := nf.RandVec(rng, 10)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(nf, x, w)
	if !field.EqualVec(out.Decoded, want) {
		t.Fatal("round on the NTT modulus decoded the wrong product")
	}
}
