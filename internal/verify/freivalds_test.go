package verify

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

var f = field.Default()

func TestCorrectResultAlwaysPasses(t *testing.T) {
	// Completeness: probability-1 acceptance of honest results.
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 50; trial++ {
		a, b := 1+rng.Intn(20), 1+rng.Intn(20)
		shard := fieldmat.Rand(f, rng, a, b)
		key := NewKey(f, Seeded(rng), shard)
		x := f.RandVec(rng, b)
		y := fieldmat.MatVec(f, shard, x)
		if !key.Check(x, y) {
			t.Fatal("honest result rejected")
		}
	}
}

func TestWrongResultRejectedWHP(t *testing.T) {
	// Soundness: wrong results pass with probability <= 1/q ~ 3e-8 for the
	// paper's field, so over 200 corruptions we expect zero acceptances.
	rng := rand.New(rand.NewSource(101))
	shard := fieldmat.Rand(f, rng, 15, 10)
	key := NewKey(f, Seeded(rng), shard)
	x := f.RandVec(rng, 10)
	y := fieldmat.MatVec(f, shard, x)
	for trial := 0; trial < 200; trial++ {
		bad := field.CopyVec(y)
		pos := rng.Intn(len(bad))
		bad[pos] = f.Add(bad[pos], f.RandNonZero(rng))
		if key.Check(x, bad) {
			t.Fatal("corrupted result accepted (probability 1/q — investigate)")
		}
	}
}

func TestReverseValueAttackDetected(t *testing.T) {
	// The paper's reverse value attack: worker sends -z instead of z.
	rng := rand.New(rand.NewSource(102))
	shard := fieldmat.Rand(f, rng, 12, 8)
	key := NewKey(f, Seeded(rng), shard)
	x := f.RandVec(rng, 8)
	z := fieldmat.MatVec(f, shard, x)
	neg := make([]field.Elem, len(z))
	allZero := true
	for i, v := range z {
		neg[i] = f.Neg(v)
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Skip("degenerate draw")
	}
	if key.Check(x, neg) {
		t.Fatal("reverse value attack passed verification")
	}
}

func TestConstantAttackDetected(t *testing.T) {
	// The paper's constant attack: worker sends a constant vector.
	rng := rand.New(rand.NewSource(103))
	shard := fieldmat.Rand(f, rng, 12, 8)
	key := NewKey(f, Seeded(rng), shard)
	x := f.RandVec(rng, 8)
	constant := make([]field.Elem, 12)
	for i := range constant {
		constant[i] = 5
	}
	if field.EqualVec(fieldmat.MatVec(f, shard, x), constant) {
		t.Skip("degenerate draw")
	}
	if key.Check(x, constant) {
		t.Fatal("constant attack passed verification")
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	shard := fieldmat.Rand(f, rng, 6, 4)
	key := NewKey(f, Seeded(rng), shard)
	x := f.RandVec(rng, 4)
	y := fieldmat.MatVec(f, shard, x)
	if key.Check(x[:3], y) {
		t.Fatal("short input accepted")
	}
	if key.Check(x, y[:5]) {
		t.Fatal("short result accepted")
	}
	if key.Check(x, append(field.CopyVec(y), 0)) {
		t.Fatal("long result accepted")
	}
}

func TestKeyLens(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	shard := fieldmat.Rand(f, rng, 7, 3)
	key := NewKey(f, Seeded(rng), shard)
	if key.InputLen() != 3 || key.ResultLen() != 7 {
		t.Fatalf("lens = (%d,%d), want (3,7)", key.InputLen(), key.ResultLen())
	}
}

func TestSmallFieldSoundnessRate(t *testing.T) {
	// Over F_7 the 1/q bound is observable: random wrong answers should be
	// accepted roughly 1/7 of the time, and certainly not, say, half.
	smallF := field.MustNew(7)
	rng := rand.New(rand.NewSource(106))
	accepted, trials := 0, 4000
	for i := 0; i < trials; i++ {
		shard := fieldmat.Rand(smallF, rng, 4, 3)
		key := NewKey(smallF, Seeded(rng), shard)
		x := smallF.RandVec(rng, 3)
		y := fieldmat.MatVec(smallF, shard, x)
		bad := field.CopyVec(y)
		bad[rng.Intn(len(bad))] = smallF.Add(bad[rng.Intn(len(bad))], smallF.RandNonZero(rng))
		if field.EqualVec(bad, y) {
			continue // the two random indices coincided into a no-op
		}
		if key.Check(x, bad) {
			accepted++
		}
	}
	rate := float64(accepted) / float64(trials)
	if rate > 0.30 {
		t.Fatalf("false-accept rate %.3f far above the 1/7 bound", rate)
	}
}

func TestAmplificationReducesFalseAccepts(t *testing.T) {
	// With 3 trials over F_7 the bound is (1/7)^3 ~ 0.003.
	smallF := field.MustNew(7)
	rng := rand.New(rand.NewSource(107))
	accepted, trials := 0, 3000
	for i := 0; i < trials; i++ {
		shard := fieldmat.Rand(smallF, rng, 4, 3)
		key := NewAmplifiedKey(smallF, Seeded(rng), shard, 3)
		x := smallF.RandVec(rng, 3)
		y := fieldmat.MatVec(smallF, shard, x)
		bad := field.CopyVec(y)
		bad[0] = smallF.Add(bad[0], smallF.RandNonZero(rng))
		if key.Check(x, bad) {
			accepted++
		}
	}
	if float64(accepted)/float64(trials) > 0.02 {
		t.Fatalf("amplified false-accept rate %.4f too high", float64(accepted)/float64(trials))
	}
}

func TestAmplifiedHonestStillPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	shard := fieldmat.Rand(f, rng, 10, 6)
	key := NewAmplifiedKey(f, Seeded(rng), shard, 5)
	if key.Trials() != 5 {
		t.Fatal("trial count wrong")
	}
	x := f.RandVec(rng, 6)
	if !key.Check(x, fieldmat.MatVec(f, shard, x)) {
		t.Fatal("honest result rejected by amplified key")
	}
}

func TestAmplifiedKeyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 trials")
		}
	}()
	NewAmplifiedKey(f, Seeded(rand.New(rand.NewSource(1))), fieldmat.NewMatrix(2, 2), 0)
}

func TestRoundKeysBothDirections(t *testing.T) {
	// The two-round protocol: round 1 verifies X̃·w, round 2 verifies X̃'·e
	// where X̃' is the coded shard of Xᵀ.
	rng := rand.New(rand.NewSource(109))
	shard := fieldmat.Rand(f, rng, 10, 20) // (m/K)×d shape
	shardT := fieldmat.Rand(f, rng, 4, 50) // (d/K)×m shape
	keys := NewRoundKeys(f, Seeded(rng), shard, shardT)
	w := f.RandVec(rng, 20)
	if !keys.Round1.Check(w, fieldmat.MatVec(f, shard, w)) {
		t.Fatal("round 1 honest rejected")
	}
	e := f.RandVec(rng, 50)
	g := fieldmat.MatVec(f, shardT, e)
	if !keys.Round2.Check(e, g) {
		t.Fatal("round 2 honest rejected")
	}
	g[0] = f.Add(g[0], 1)
	if keys.Round2.Check(e, g) {
		t.Fatal("round 2 corruption accepted")
	}
}

func BenchmarkVerifyVsCompute(b *testing.B) {
	// Quantifies the paper's O(m+d) vs O(md) claim at the CI scale shard
	// (133×600, i.e. m=1200, d=600, K=9 → m/K≈133).
	rng := rand.New(rand.NewSource(110))
	shard := fieldmat.Rand(f, rng, 133, 600)
	key := NewKey(f, Seeded(rng), shard)
	x := f.RandVec(rng, 600)
	y := fieldmat.MatVec(f, shard, x)
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !key.Check(x, y) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fieldmat.MatVec(f, shard, x)
		}
	})
}

func BenchmarkKeyGen(b *testing.B) {
	rng := rand.New(rand.NewSource(111))
	shard := fieldmat.Rand(f, rng, 133, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewKey(f, Seeded(rng), shard)
	}
}

func TestCheckBatchAcceptsHonestStacks(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	shard := fieldmat.Rand(f, rng, 8, 5)
	key := NewKey(f, Seeded(rng), shard)
	const batch = 4
	var inputs, results []field.Elem
	for c := 0; c < batch; c++ {
		x := f.RandVec(rng, 5)
		inputs = append(inputs, x...)
		results = append(results, fieldmat.MatVec(f, shard, x)...)
	}
	if !key.CheckBatch(inputs, results, batch) {
		t.Fatal("honest batched claim rejected")
	}
	amp := NewAmplifiedKey(f, Seeded(rng), shard, 3)
	if !amp.CheckBatch(inputs, results, batch) {
		t.Fatal("honest batched claim rejected by the amplified key")
	}
}

func TestCheckBatchRejectsOneCorruptedColumn(t *testing.T) {
	// A single wrong entry anywhere in the stacked claim must fail the
	// whole batch: the serving layer trusts one verdict per worker.
	rng := rand.New(rand.NewSource(105))
	shard := fieldmat.Rand(f, rng, 8, 5)
	key := NewKey(f, Seeded(rng), shard)
	const batch = 4
	var inputs, results []field.Elem
	for c := 0; c < batch; c++ {
		x := f.RandVec(rng, 5)
		inputs = append(inputs, x...)
		results = append(results, fieldmat.MatVec(f, shard, x)...)
	}
	for trial := 0; trial < 100; trial++ {
		bad := field.CopyVec(results)
		pos := rng.Intn(len(bad))
		bad[pos] = f.Add(bad[pos], f.RandNonZero(rng))
		if key.CheckBatch(inputs, bad, batch) {
			t.Fatal("corrupted batched claim accepted")
		}
	}
	// Dimension mismatches can never be valid claims.
	if key.CheckBatch(inputs[:len(inputs)-1], results, batch) {
		t.Fatal("short input accepted")
	}
	if key.CheckBatch(inputs, results, batch+1) {
		t.Fatal("wrong batch count accepted")
	}
}
