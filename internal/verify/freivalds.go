// Package verify implements the information-theoretic verifiable-computing
// side of AVCC: Freivalds' algorithm (1977) specialised to the matrix-vector
// products of the paper's two-round logistic-regression protocol, plus the
// k-trial amplification that drives the false-acceptance probability from
// 1/q down to (1/q)^k.
//
// For a worker holding the coded shard X̃ ∈ F_q^{a×b}, the master draws a
// secret uniform r ∈ F_q^a once and precomputes s = r·X̃ ∈ F_q^b (paper
// eq. 6–7). When the worker later claims ŷ = X̃·x for a public input x, the
// master accepts iff
//
//	s·x == r·ŷ,
//
// which costs O(a+b) multiplications instead of the O(a·b) the worker spent.
// A correct result always passes; a wrong result passes with probability at
// most 1/q because r is uniform and hidden (paper eq. 10–11).
//
// Key generation is a one-time cost amortised over all training iterations —
// the same keys verify every round-1 check s⁽¹⁾·w = r⁽¹⁾·z̃ and every
// round-2 check s⁽²⁾·e = r⁽²⁾·g̃.
package verify

import (
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Key verifies claims of the form result = X̃·input for one fixed shard X̃.
type Key struct {
	f *field.Field
	// r is the secret verification vector, length = shard rows.
	r []field.Elem
	// s = r·X̃, length = shard cols.
	s []field.Elem
}

// NewKey draws the secret vector from src and precomputes s = r·X̃. This is
// the "Verification Key Generation" step of the protocol; it performs the
// same O(a·b) work as one worker computation, once, up front. Deployments
// pass Crypto(); deterministic tests pass Seeded(rng).
func NewKey(f *field.Field, src Source, shard *fieldmat.Matrix) *Key {
	r := src.Vec(f, shard.Rows)
	s := fieldmat.VecMat(f, r, shard)
	return &Key{f: f, r: r, s: s}
}

// Check reports whether result is consistent with X̃·input. Cost: one
// length-b and one length-a inner product.
func (k *Key) Check(input, result []field.Elem) bool {
	if len(input) != len(k.s) || len(result) != len(k.r) {
		return false // dimension mismatch can never be a valid claim
	}
	return k.f.Dot(k.s, input) == k.f.Dot(k.r, result)
}

// CheckBatch verifies a whole batched claim Y = X̃·W in one Freivalds sweep
// over the stacked matrices: with inputs packing the columns of W
// (inputs[c·b:(c+1)·b]) and results packing the columns of Y, it accepts iff
// s·W == r·Y componentwise — the matrix identity (r·X̃)·W = r·(X̃·W), checked
// column by column with the SAME secret r, so a single corrupted column
// fails the whole claim with probability ≥ 1 − 1/q. Cost: batch·O(a+b),
// identical to the per-vector total, but one verdict and one pass.
func (k *Key) CheckBatch(inputs, results []field.Elem, batch int) bool {
	if batch < 1 || len(inputs) != batch*len(k.s) || len(results) != batch*len(k.r) {
		return false // dimension mismatch can never be a valid claim
	}
	b, a := len(k.s), len(k.r)
	for c := 0; c < batch; c++ {
		if k.f.Dot(k.s, inputs[c*b:(c+1)*b]) != k.f.Dot(k.r, results[c*a:(c+1)*a]) {
			return false
		}
	}
	return true
}

// InputLen returns the expected input vector length (shard columns).
func (k *Key) InputLen() int { return len(k.s) }

// ResultLen returns the expected result vector length (shard rows).
func (k *Key) ResultLen() int { return len(k.r) }

// AmplifiedKey runs t independent Freivalds trials, driving the soundness
// error to (1/q)^t. The paper runs a single trial (q = 2^25−39 makes 1/q ≈
// 3·10⁻⁸ per check already); the ablation benchmarks sweep t.
type AmplifiedKey struct {
	keys []*Key
}

// NewAmplifiedKey builds t independent keys for the same shard.
func NewAmplifiedKey(f *field.Field, src Source, shard *fieldmat.Matrix, trials int) *AmplifiedKey {
	if trials < 1 {
		panic("verify: amplification needs at least one trial")
	}
	ks := make([]*Key, trials)
	for i := range ks {
		ks[i] = NewKey(f, src, shard)
	}
	return &AmplifiedKey{keys: ks}
}

// Check accepts only if every trial accepts.
func (a *AmplifiedKey) Check(input, result []field.Elem) bool {
	for _, k := range a.keys {
		if !k.Check(input, result) {
			return false
		}
	}
	return true
}

// CheckBatch accepts a batched claim only if every trial's stacked check
// accepts (see Key.CheckBatch).
func (a *AmplifiedKey) CheckBatch(inputs, results []field.Elem, batch int) bool {
	for _, k := range a.keys {
		if !k.CheckBatch(inputs, results, batch) {
			return false
		}
	}
	return true
}

// Trials returns the amplification factor.
func (a *AmplifiedKey) Trials() int { return len(a.keys) }

// RoundKeys bundles the two per-worker keys of the logistic-regression
// protocol: V_i = (key over X̃_i for round 1, key over the transposed-shard
// X̃'_i for round 2) — the paper's s⁽¹⁾, s⁽²⁾ pair.
type RoundKeys struct {
	// Round1 verifies z̃ = X̃_i·w claims.
	Round1 *Key
	// Round2 verifies g̃ = X̃'_i·e claims.
	Round2 *Key
}

// NewRoundKeys generates both keys for a worker's (shard, transposedShard)
// pair.
func NewRoundKeys(f *field.Field, src Source, shard, shardT *fieldmat.Matrix) *RoundKeys {
	return &RoundKeys{
		Round1: NewKey(f, src, shard),
		Round2: NewKey(f, src, shardT),
	}
}
