package verify

import (
	"math/rand"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

func gram(shard *fieldmat.Matrix) []field.Elem {
	return fieldmat.MatMul(f, shard, shard.Transpose()).Data
}

func TestGramHonestPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 20; trial++ {
		b, d := 1+rng.Intn(10), 1+rng.Intn(15)
		shard := fieldmat.Rand(f, rng, b, d)
		key := NewGramKey(f, Seeded(rng), shard)
		if key.Dim() != b {
			t.Fatalf("Dim = %d, want %d", key.Dim(), b)
		}
		if !key.Check(gram(shard)) {
			t.Fatal("honest Gram rejected")
		}
	}
}

func TestGramCorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	shard := fieldmat.Rand(f, rng, 8, 12)
	key := NewGramKey(f, Seeded(rng), shard)
	honest := gram(shard)
	for trial := 0; trial < 100; trial++ {
		bad := field.CopyVec(honest)
		bad[rng.Intn(len(bad))] = f.Add(bad[rng.Intn(len(bad))], f.RandNonZero(rng))
		if field.EqualVec(bad, honest) {
			continue
		}
		if key.Check(bad) {
			t.Fatal("corrupted Gram accepted (probability 1/q)")
		}
	}
}

func TestGramWrongShapeRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	shard := fieldmat.Rand(f, rng, 5, 7)
	key := NewGramKey(f, Seeded(rng), shard)
	if key.Check(make([]field.Elem, 24)) {
		t.Fatal("wrong-size claim accepted")
	}
	if key.Check(nil) {
		t.Fatal("nil claim accepted")
	}
}

func TestGramReverseAndConstantAttacks(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	shard := fieldmat.Rand(f, rng, 6, 9)
	key := NewGramKey(f, Seeded(rng), shard)
	honest := gram(shard)
	neg := make([]field.Elem, len(honest))
	nonzero := false
	for i, v := range honest {
		neg[i] = f.Neg(v)
		if v != 0 {
			nonzero = true
		}
	}
	if nonzero && key.Check(neg) {
		t.Fatal("reverse attack on Gram accepted")
	}
	constant := make([]field.Elem, len(honest))
	for i := range constant {
		constant[i] = 3
	}
	if key.Check(constant) && !field.EqualVec(constant, honest) {
		t.Fatal("constant attack on Gram accepted")
	}
}

func BenchmarkGramVerifyVsCompute(b *testing.B) {
	// Quantifies the O(b²) vs O(b²·d) gap that makes Generalized-AVCC
	// verification affordable.
	rng := rand.New(rand.NewSource(304))
	shard := fieldmat.Rand(f, rng, 80, 300)
	key := NewGramKey(f, Seeded(rng), shard)
	g := gram(shard)
	b.Run("verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !key.Check(g) {
				b.Fatal("rejected")
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fieldmat.MatMul(f, shard, shard.Transpose())
		}
	})
}
