package verify

import (
	crand "crypto/rand"
	"fmt"
	"math/rand"

	"repro/internal/field"
)

// Source supplies the secret uniform vectors Freivalds keys are built from.
// The soundness argument (wrong result accepted w.p. ≤ 1/q) needs r to be
// uniform AND unpredictable to the workers; a seeded math/rand stream gives
// neither against an adversary who can guess the seed, so production key
// generation must use Crypto. Seeded remains available because key VALUES
// affect neither decoded outputs nor timing — deterministic tests and
// benchmarks are safe users.
type Source interface {
	// Vec returns n fresh uniform elements of f.
	Vec(f *field.Field, n int) []field.Elem
}

type cryptoSource struct{}

// Crypto is the default entropy source: rejection-sampled uniform field
// elements drawn from the operating system's CSPRNG.
func Crypto() Source { return cryptoSource{} }

func (cryptoSource) Vec(f *field.Field, n int) []field.Elem {
	out := make([]field.Elem, 0, n)
	var buf [512]byte
	for len(out) < n {
		if _, err := crand.Read(buf[:]); err != nil {
			// The platform CSPRNG failing is not a condition to limp past —
			// a predictable key silently voids every verification guarantee.
			panic(fmt.Sprintf("verify: system entropy unavailable: %v", err))
		}
		for off := 0; off+8 <= len(buf) && len(out) < n; off += 8 {
			var w [8]byte
			copy(w[:], buf[off:off+8])
			if e, ok := f.FromUniformBytes(w); ok {
				out = append(out, e)
			}
		}
	}
	return out
}

type seededSource struct{ rng *rand.Rand }

// Seeded adapts a deterministic math/rand stream into a Source, for
// reproducible tests and benchmarks. Never use it for a real deployment.
func Seeded(rng *rand.Rand) Source { return seededSource{rng: rng} }

func (s seededSource) Vec(f *field.Field, n int) []field.Elem {
	return f.RandVec(s.rng, n)
}
