package verify

import (
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Gram verification — the Generalized-AVCC (paper Section IV-B) check for
// the degree-2 computation G = X̃·X̃ᵀ.
//
// Freivalds' test for a claimed matrix product: draw a secret uniform
// r ∈ F_q^b and accept iff G·r == X̃·(X̃ᵀ·r). Since the master generated X̃
// itself, the right-hand side is precomputed ONCE at key-generation time
// (v = X̃·(X̃ᵀ·r)), so each per-iteration check costs only the O(b²)
// product G·r — versus the O(b²·d) the worker spent computing G. A wrong G
// passes with probability ≤ 1/q, exactly as in the matvec case.

// GramKey verifies claims of the form G = X̃·X̃ᵀ for one fixed shard.
type GramKey struct {
	f *field.Field
	// r is the secret vector, length = shard rows b.
	r []field.Elem
	// v = X̃·(X̃ᵀ·r), the precomputed honest value of G·r.
	v []field.Elem
}

// NewGramKey draws the secret from src and precomputes the reference
// product.
func NewGramKey(f *field.Field, src Source, shard *fieldmat.Matrix) *GramKey {
	r := src.Vec(f, shard.Rows)
	xtR := fieldmat.MatVec(f, shard.Transpose(), r)
	v := fieldmat.MatVec(f, shard, xtR)
	return &GramKey{f: f, r: r, v: v}
}

// Check reports whether the flattened b×b matrix gFlat is consistent with
// X̃·X̃ᵀ.
func (k *GramKey) Check(gFlat []field.Elem) bool {
	b := len(k.r)
	if len(gFlat) != b*b {
		return false
	}
	// (G·r)_i = Σ_j G[i][j]·r[j], row-major flattening.
	for i := 0; i < b; i++ {
		if k.f.Dot(gFlat[i*b:(i+1)*b], k.r) != k.v[i] {
			return false
		}
	}
	return true
}

// Dim returns the shard row count b (the claimed matrix is b×b).
func (k *GramKey) Dim() int { return len(k.r) }
