// Package scenario is the deterministic fault-injection engine: a Scenario
// is a declarative timeline of environment events — worker crash and rejoin,
// slowdown phases, Byzantine flips, link degradation, message drops,
// heterogeneous node classes — and an Engine compiles it into the
// simnet.Dynamics interface the executors consume, plus behaviour wrappers
// for scenario-driven Byzantine corruption.
//
// The paper's core claim is *adaptivity*: AVCC re-codes at runtime as
// straggler and adversary conditions change (Section IV step 5, Fig. 5).
// A static environment — one fixed straggler set, one fixed Byzantine set —
// never exercises that path beyond a single transition. Scenarios make the
// time-varying world a first-class, seed-deterministic test substrate: the
// same seed always produces the same event timeline, the same virtual-time
// trace, and the same metrics, on any machine.
//
// Everything is a pure function of (worker, iteration); no wall-clock state
// is involved, so the engine drives the virtual-time executor, the
// goroutine executor, and (via behaviours shipped to servers) the RPC
// executor identically.
package scenario

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/attack"
	"repro/internal/field"
)

// Kind enumerates the event types a scenario timeline may contain.
type Kind string

const (
	// Crash takes the worker down for [From, To): it computes nothing and
	// returns nothing. The worker rejoins (with its shards intact) at To.
	Crash Kind = "crash"
	// Drop loses the worker's result message in transit during [From, To):
	// the work happens, the master sees an erasure.
	Drop Kind = "drop"
	// Slowdown multiplies the worker's compute time by Factor during
	// [From, To). Open-ended slowdowns model heterogeneous node classes.
	Slowdown Kind = "slowdown"
	// LinkDegrade multiplies the worker's link time by Factor during
	// [From, To).
	LinkDegrade Kind = "link"
	// Byzantine makes the worker corrupt its results during [From, To),
	// using the scenario's Corruption behaviour.
	Byzantine Kind = "byzantine"
)

// Event is one environment change, active on iterations in [From, To).
type Event struct {
	Kind   Kind
	Worker int
	// From is the first affected iteration; To is one past the last.
	// To <= 0 means the event never ends (a permanent node class).
	From, To int
	// Factor is the slowdown/link multiplier (>= 1); ignored for crash,
	// drop, and byzantine events.
	Factor float64
}

// active reports whether the event covers iter.
func (ev Event) active(iter int) bool {
	return iter >= ev.From && (ev.To <= 0 || iter < ev.To)
}

// Scenario is a named, seeded fault timeline built for an N-worker
// deployment. Deployments with fewer workers (the uncoded baseline runs K
// of the N nodes) simply never query the higher IDs, so one scenario
// describes one shared environment for every scheme — exactly like the
// paper's testbed, where all systems face the same machines.
type Scenario struct {
	// Name identifies the scenario in tables and traces.
	Name string
	// N is the worker count the timeline was built for.
	N int
	// Seed is the seed the timeline was generated from (presets) or 0 for
	// hand-built scenarios. Recorded so traces are self-describing.
	Seed int64
	// Events is the timeline. Order does not matter; concurrent Slowdown or
	// LinkDegrade factors on one worker multiply.
	Events []Event
	// Corruption is what a scenario-Byzantine worker sends instead of its
	// honest result; nil defaults to the paper's reverse-value attack.
	Corruption attack.Behavior
}

// Validate checks the timeline is well-formed for the scenario's N.
func (s *Scenario) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("scenario: N = %d", s.N)
	}
	for i, ev := range s.Events {
		if ev.Worker < 0 || ev.Worker >= s.N {
			return fmt.Errorf("scenario: event %d targets worker %d outside [0, %d)", i, ev.Worker, s.N)
		}
		if ev.From < 0 || (ev.To > 0 && ev.To <= ev.From) {
			return fmt.Errorf("scenario: event %d has empty window [%d, %d)", i, ev.From, ev.To)
		}
		switch ev.Kind {
		case Slowdown, LinkDegrade:
			if ev.Factor < 1 {
				return fmt.Errorf("scenario: event %d (%s) has factor %g < 1", i, ev.Kind, ev.Factor)
			}
		case Crash, Drop, Byzantine:
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// Engine is a compiled scenario: O(events-per-worker) state queries that
// implement simnet.Dynamics. The zero state of every query is the nominal
// steady world, so workers without events behave exactly as before.
type Engine struct {
	s        *Scenario
	byWorker [][]Event
	corrupt  attack.Behavior
}

// NewEngine validates and compiles a scenario.
func NewEngine(s *Scenario) (*Engine, error) {
	if s == nil {
		return nil, fmt.Errorf("scenario: nil scenario")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{s: s, byWorker: make([][]Event, s.N), corrupt: s.Corruption}
	if e.corrupt == nil {
		e.corrupt = attack.ReverseValue{C: 1}
	}
	for _, ev := range s.Events {
		e.byWorker[ev.Worker] = append(e.byWorker[ev.Worker], ev)
	}
	return e, nil
}

// Scenario returns the compiled scenario.
func (e *Engine) Scenario() *Scenario { return e.s }

func (e *Engine) events(worker int) []Event {
	if worker < 0 || worker >= len(e.byWorker) {
		return nil
	}
	return e.byWorker[worker]
}

// ComputeFactor implements simnet.Dynamics: the product of all active
// slowdown factors on the worker.
func (e *Engine) ComputeFactor(worker, iter int) float64 {
	factor := 1.0
	for _, ev := range e.events(worker) {
		if ev.Kind == Slowdown && ev.active(iter) {
			factor *= ev.Factor
		}
	}
	return factor
}

// LinkFactor implements simnet.Dynamics.
func (e *Engine) LinkFactor(worker, iter int) float64 {
	factor := 1.0
	for _, ev := range e.events(worker) {
		if ev.Kind == LinkDegrade && ev.active(iter) {
			factor *= ev.Factor
		}
	}
	return factor
}

// Crashed implements simnet.Dynamics.
func (e *Engine) Crashed(worker, iter int) bool { return e.is(Crash, worker, iter) }

// Dropped implements simnet.Dynamics.
func (e *Engine) Dropped(worker, iter int) bool { return e.is(Drop, worker, iter) }

// IsByzantine reports whether the worker corrupts its output at iter.
func (e *Engine) IsByzantine(worker, iter int) bool { return e.is(Byzantine, worker, iter) }

func (e *Engine) is(kind Kind, worker, iter int) bool {
	for _, ev := range e.events(worker) {
		if ev.Kind == kind && ev.active(iter) {
			return true
		}
	}
	return false
}

// MaxDisturbed returns, over iterations [0, iters), the largest number of
// workers simultaneously crashed, dropped, or slowed by at least
// minSlowdown — the quantity AVCC's adaptation slack compares against.
func (e *Engine) MaxDisturbed(iters int, minSlowdown float64) int {
	max := 0
	for iter := 0; iter < iters; iter++ {
		n := 0
		for w := 0; w < e.s.N; w++ {
			if e.Crashed(w, iter) || e.Dropped(w, iter) || e.ComputeFactor(w, iter) >= minSlowdown {
				n++
			}
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Trace renders the per-iteration environment state for iterations
// [0, iters) in a canonical byte-stable form: one line per (iteration,
// worker) with any non-nominal state, ordered by iteration then worker.
// Identical seeds must produce identical traces; the determinism golden
// test pins this down.
func (e *Engine) Trace(iters int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario=%s n=%d seed=%d\n", e.s.Name, e.s.N, e.s.Seed)
	for iter := 0; iter < iters; iter++ {
		for w := 0; w < e.s.N; w++ {
			var states []string
			if e.Crashed(w, iter) {
				states = append(states, "crash")
			}
			if e.Dropped(w, iter) {
				states = append(states, "drop")
			}
			if f := e.ComputeFactor(w, iter); f != 1 {
				states = append(states, fmt.Sprintf("rate=%.4g", f))
			}
			if f := e.LinkFactor(w, iter); f != 1 {
				states = append(states, fmt.Sprintf("link=%.4g", f))
			}
			if e.IsByzantine(w, iter) {
				states = append(states, "byz")
			}
			if len(states) > 0 {
				sort.Strings(states)
				fmt.Fprintf(&b, "t=%d w=%d %s\n", iter, w, strings.Join(states, " "))
			}
		}
	}
	return b.String()
}

// WrapBehavior layers scenario-driven Byzantine corruption over a worker's
// configured behaviour: on iterations where the scenario flips the worker,
// the scenario's Corruption is applied to the honest output; otherwise the
// inner behaviour runs untouched.
func (e *Engine) WrapBehavior(worker int, inner attack.Behavior) attack.Behavior {
	if inner == nil {
		inner = attack.Honest{}
	}
	return scenarioBehavior{eng: e, worker: worker, inner: inner}
}

type scenarioBehavior struct {
	eng    *Engine
	worker int
	inner  attack.Behavior
}

// Apply implements attack.Behavior.
func (b scenarioBehavior) Apply(f *field.Field, iter int, honest []field.Elem) []field.Elem {
	if b.eng.IsByzantine(b.worker, iter) {
		return b.eng.corrupt.Apply(f, iter, honest)
	}
	return b.inner.Apply(f, iter, honest)
}

// Name implements attack.Behavior.
func (b scenarioBehavior) Name() string { return "scenario(" + b.inner.Name() + ")" }
