package scenario

import (
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
)

var f = field.Default()

func mustEngine(t *testing.T, s *Scenario) *Engine {
	t.Helper()
	e, err := NewEngine(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEventWindows(t *testing.T) {
	e := mustEngine(t, &Scenario{
		Name: "windows", N: 4,
		Events: []Event{
			{Kind: Crash, Worker: 0, From: 2, To: 4},
			{Kind: Drop, Worker: 1, From: 3, To: 4},
			{Kind: Slowdown, Worker: 2, From: 1, To: 0, Factor: 2}, // permanent class
			{Kind: Slowdown, Worker: 2, From: 3, To: 5, Factor: 3}, // burst on top
			{Kind: LinkDegrade, Worker: 3, From: 0, To: 2, Factor: 4},
			{Kind: Byzantine, Worker: 3, From: 2, To: 3},
		},
	})
	if e.Crashed(0, 1) || !e.Crashed(0, 2) || !e.Crashed(0, 3) || e.Crashed(0, 4) {
		t.Error("crash window [2,4) wrong")
	}
	if e.Dropped(1, 2) || !e.Dropped(1, 3) || e.Dropped(1, 4) {
		t.Error("drop window [3,4) wrong")
	}
	if got := e.ComputeFactor(2, 0); got != 1 {
		t.Errorf("worker 2 at t=0: factor %g, want 1", got)
	}
	if got := e.ComputeFactor(2, 1); got != 2 {
		t.Errorf("worker 2 at t=1: factor %g, want 2", got)
	}
	if got := e.ComputeFactor(2, 3); got != 6 {
		t.Errorf("concurrent slowdowns must multiply: got %g, want 6", got)
	}
	if got := e.ComputeFactor(2, 100); got != 2 {
		t.Errorf("open-ended class must persist: got %g, want 2", got)
	}
	if got := e.LinkFactor(3, 1); got != 4 {
		t.Errorf("link factor %g, want 4", got)
	}
	if e.IsByzantine(3, 1) || !e.IsByzantine(3, 2) || e.IsByzantine(3, 3) {
		t.Error("byzantine window [2,3) wrong")
	}
	// Workers and IDs outside the scenario are nominal.
	if e.Crashed(99, 2) || e.ComputeFactor(-1, 0) != 1 {
		t.Error("out-of-range workers must be nominal")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []*Scenario{
		{Name: "n", N: 0},
		{Name: "worker", N: 2, Events: []Event{{Kind: Crash, Worker: 2, From: 0, To: 1}}},
		{Name: "window", N: 2, Events: []Event{{Kind: Crash, Worker: 0, From: 3, To: 3}}},
		{Name: "factor", N: 2, Events: []Event{{Kind: Slowdown, Worker: 0, From: 0, To: 1, Factor: 0.5}}},
		{Name: "kind", N: 2, Events: []Event{{Kind: "meteor", Worker: 0, From: 0, To: 1}}},
	}
	for _, s := range bad {
		if _, err := NewEngine(s); err == nil {
			t.Errorf("scenario %q should have been rejected", s.Name)
		}
	}
	if _, err := NewEngine(nil); err == nil {
		t.Error("nil scenario accepted")
	}
}

func TestWrapBehaviorFlips(t *testing.T) {
	e := mustEngine(t, &Scenario{
		Name: "flip", N: 2,
		Events:     []Event{{Kind: Byzantine, Worker: 1, From: 2, To: 4}},
		Corruption: attack.Constant{V: 7},
	})
	honest := []field.Elem{1, 2, 3}
	b := e.WrapBehavior(1, attack.Honest{})
	if got := b.Apply(f, 1, honest); !field.EqualVec(got, honest) {
		t.Error("worker must be honest before the flip")
	}
	if got := b.Apply(f, 2, honest); field.EqualVec(got, honest) {
		t.Error("worker must corrupt during the flip")
	} else if got[0] != 7 {
		t.Errorf("corruption must use the scenario's Corruption behaviour, got %v", got)
	}
	if got := b.Apply(f, 4, honest); !field.EqualVec(got, honest) {
		t.Error("worker must recover after the flip")
	}
	// The wrapper preserves the inner behaviour outside flip windows.
	inner := e.WrapBehavior(1, attack.Constant{V: 9})
	if got := inner.Apply(f, 0, honest); got[0] != 9 {
		t.Error("inner behaviour must run outside flip windows")
	}
	if !strings.Contains(inner.Name(), "scenario(") {
		t.Errorf("wrapper name %q should mark the scenario layer", inner.Name())
	}
}

func TestDefaultCorruptionIsReverseValue(t *testing.T) {
	e := mustEngine(t, &Scenario{
		Name: "default-corrupt", N: 1,
		Events: []Event{{Kind: Byzantine, Worker: 0, From: 0, To: 1}},
	})
	honest := []field.Elem{5}
	got := e.WrapBehavior(0, nil).Apply(f, 0, honest)
	if want := f.Neg(5); got[0] != want {
		t.Errorf("default corruption: got %v, want reverse-value %v", got[0], want)
	}
}

func TestMaxDisturbed(t *testing.T) {
	e := mustEngine(t, &Scenario{
		Name: "peak", N: 5,
		Events: []Event{
			{Kind: Crash, Worker: 4, From: 3, To: 5},
			{Kind: Slowdown, Worker: 0, From: 3, To: 6, Factor: 10},
			{Kind: Slowdown, Worker: 1, From: 4, To: 6, Factor: 10},
			{Kind: Slowdown, Worker: 2, From: 0, To: 10, Factor: 1.5}, // below threshold
		},
	})
	if got := e.MaxDisturbed(10, 2); got != 3 {
		t.Errorf("MaxDisturbed = %d, want 3 (crash + two >=2x slowdowns at t=4)", got)
	}
}

func TestProfilesAreValidAcrossTopologies(t *testing.T) {
	for _, name := range Profiles() {
		for _, top := range []struct{ n, k int }{{12, 9}, {10, 4}, {9, 9}, {4, 2}} {
			s, err := Profile(name, top.n, top.k, 7)
			if err != nil {
				t.Fatalf("%s at (%d,%d): %v", name, top.n, top.k, err)
			}
			e := mustEngine(t, s)
			// Integrity events must never target the fault-free core [0, k).
			for iter := 0; iter < 20; iter++ {
				for w := 0; w < top.k; w++ {
					if e.Crashed(w, iter) || e.Dropped(w, iter) || e.IsByzantine(w, iter) {
						t.Fatalf("%s at (%d,%d): integrity fault on core worker %d at t=%d",
							name, top.n, top.k, w, iter)
					}
				}
			}
		}
	}
	if _, err := Profile("warp-storm", 12, 9, 1); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Profile(Churn, 9, 12, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestSteadyIsEventFree(t *testing.T) {
	s, err := Profile(Steady, 12, 9, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 0 {
		t.Fatalf("steady has %d events, want 0", len(s.Events))
	}
}

func TestChurnPeakDisturbanceExceedsSlack(t *testing.T) {
	// The churn preset exists to push AVCC's adaptation slack negative at
	// the paper's (12, 9) topology: peak disturbance must exceed
	// N - threshold = 12 - 9 = 3 workers.
	s, err := Profile(Churn, 12, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	e := mustEngine(t, s)
	if got := e.MaxDisturbed(20, ChurnSlowdownFactor); got < 4 {
		t.Fatalf("churn peak disturbance %d, want >= 4 to cross the (12,9) slack", got)
	}
}
