package scenario_test

// The determinism golden tests: a scenario run is a pure function of its
// seed. Same seed => byte-identical event timeline, state trace, and
// end-to-end metrics; different seed => a different trace. This is what
// makes scenarios a regression substrate — a failure under
// Profile(Churn, 12, 9, 42) reproduces anywhere, forever — and it guards
// the math/rand plumbing: any code path that starts drawing from a shared
// or time-seeded source breaks these tests immediately.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scenario"
	"repro/internal/scheme"
)

func TestProfileSameSeedByteIdenticalTrace(t *testing.T) {
	for _, name := range scenario.Profiles() {
		a, err := scenario.Profile(name, 12, 9, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Profile(name, 12, 9, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("%s: same seed produced different event timelines", name)
		}
		ea, err := scenario.NewEngine(a)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := scenario.NewEngine(b)
		if err != nil {
			t.Fatal(err)
		}
		if ta, tb := ea.Trace(15), eb.Trace(15); ta != tb {
			t.Errorf("%s: same seed produced different traces:\n--- a ---\n%s--- b ---\n%s", name, ta, tb)
		}
	}
}

func TestProfileDifferentSeedDifferentTrace(t *testing.T) {
	// Steady is excluded: the control profile has no randomness by design.
	// The remaining profiles draw worker choices and window offsets from
	// the seed; for these seed pairs every one of them must diverge.
	for _, name := range []string{scenario.Churn, scenario.Degrade, scenario.FlashCrowd} {
		a, err := scenario.Profile(name, 12, 9, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := scenario.Profile(name, 12, 9, 2)
		if err != nil {
			t.Fatal(err)
		}
		ea, _ := scenario.NewEngine(a)
		eb, _ := scenario.NewEngine(b)
		if ea.Trace(15) == eb.Trace(15) {
			t.Errorf("%s: seeds 1 and 2 produced identical traces — the seed is not reaching the generator", name)
		}
	}
	// Adversarial-wave only draws its start offset (two choices), so assert
	// divergence on a seed pair that flips it.
	traces := map[string]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		s, err := scenario.Profile(scenario.AdversarialWave, 12, 9, seed)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := scenario.NewEngine(s)
		traces[e.Trace(15)] = true
	}
	if len(traces) < 2 {
		t.Error("adversarial-wave: eight seeds produced one trace — the seed is not reaching the generator")
	}
}

// metricsFingerprint runs AVCC under the churn scenario and renders every
// observable of the run — decoded outputs, cost breakdowns, straggler and
// Byzantine observations, re-coding decisions — into one canonical string.
func metricsFingerprint(t *testing.T, seed int64) string {
	t.Helper()
	f := field.Default()
	scn, err := scenario.Profile(scenario.Churn, 12, 9, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := fieldmat.Rand(f, rng, 360, 120)
	m, err := scheme.New("avcc", f, scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 1, 0),
		scheme.WithSeed(seed),
		scheme.WithScenario(scn),
	), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for iter := 0; iter < 8; iter++ {
		w := f.RandVec(rng, 120)
		out, err := m.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		cost, recoded := m.FinishIteration(iter)
		fmt.Fprintf(&b, "iter=%d decoded=%v used=%v byz=%v stragglers=%d breakdown=%+v recoded=%v cost=%.9g\n",
			iter, out.Decoded[:4], out.Used, out.Byzantine, out.StragglersObserved,
			out.Breakdown, recoded, cost)
	}
	return b.String()
}

func TestScenarioRunMetricsAreSeedDeterministic(t *testing.T) {
	a := metricsFingerprint(t, 42)
	b := metricsFingerprint(t, 42)
	if a != b {
		t.Fatalf("same seed produced different metrics:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if c := metricsFingerprint(t, 43); a == c {
		t.Fatal("different seeds produced identical metrics — seeds are not being threaded through")
	}
}
