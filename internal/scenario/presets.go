package scenario

import (
	"fmt"
	"math/rand"
	"sort"
)

// Preset profile names. Each is a family of scenarios parameterised by
// (n, k, seed): n is the deployment's worker count, k is the fault-free
// core size. Integrity-affecting events (crash, drop, byzantine) are placed
// only on the redundancy workers [k, n), so every scheme sharing the
// environment — including the uncoded baseline, which deploys exactly the k
// core workers and has zero correction budget — keeps decoding exactly,
// while the coded schemes absorb the faults inside their budgets. Timing
// events (slowdowns, link degradation) land anywhere: they never change
// outputs, only who the master waits for.
const (
	// Steady is the no-event control: the static world every pre-scenario
	// experiment ran in.
	Steady = "steady"
	// Churn has workers crashing and rejoining in staggered windows while a
	// slowdown wave hits part of the core — the regime dynamic re-coding
	// exists for (paper Fig. 5 generalised to continuous churn).
	Churn = "churn"
	// Degrade ramps link degradation over half the fleet and loses a
	// redundancy worker's messages for a stretch.
	Degrade = "degrade"
	// AdversarialWave flips redundancy workers Byzantine one after another,
	// a moving target for per-worker verification and quarantine.
	AdversarialWave = "adversarial-wave"
	// FlashCrowd models heterogeneous node classes plus a load spike that
	// slows the whole fleet for a few iterations.
	FlashCrowd = "flash-crowd"
)

// ChurnSlowdownFactor is the compute multiplier of the churn preset's
// slowdown wave — larger than the straggler-detection threshold by enough
// margin that link time and jitter cannot mask it.
const ChurnSlowdownFactor = 12

// Profiles returns the preset names in canonical order.
func Profiles() []string {
	return []string{Steady, Churn, Degrade, AdversarialWave, FlashCrowd}
}

// Profile builds the named preset for an n-worker deployment with a k-worker
// fault-free core. The timeline is a deterministic function of (name, n, k,
// seed): the seed drives which workers are hit and when windows open, so two
// runs with one seed are byte-identical and different seeds explore
// different corners of the same regime.
func Profile(name string, n, k int, seed int64) (*Scenario, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("scenario: profile %q wants 1 <= k <= n, got (n, k) = (%d, %d)", name, n, k)
	}
	s := &Scenario{Name: name, N: n, Seed: seed}
	r := rand.New(rand.NewSource(seed))
	switch name {
	case Steady:
		// No events: the control arm every other profile is compared to.
	case Churn:
		// Staggered crash/rejoin windows sweep the redundancy workers while
		// a slowdown wave holds >= churnSlowCount(k) core workers at
		// ChurnSlowdownFactor x. The wave overlaps the first crash window,
		// so the peak disturbance is slowCount+1 workers at once — sized to
		// push AVCC's slack A_t negative at the (12, 9) topology and force
		// a re-code.
		base := 2 + r.Intn(2)
		for i, w := 0, k; w < n; i, w = i+1, w+1 {
			s.Events = append(s.Events, Event{Kind: Crash, Worker: w, From: base + 2*i, To: base + 2*i + 2})
		}
		for _, w := range pick(r, k, churnSlowCount(k)) {
			s.Events = append(s.Events, Event{Kind: Slowdown, Worker: w, From: base + 1, To: base + 5, Factor: ChurnSlowdownFactor})
		}
	case Degrade:
		// Two-stage congestion ramp on a random half of the fleet, plus a
		// lost-message stretch on the first redundancy worker.
		for _, w := range pick(r, n, (n+1)/2) {
			s.Events = append(s.Events,
				Event{Kind: LinkDegrade, Worker: w, From: 2, To: 6, Factor: 3},
				Event{Kind: LinkDegrade, Worker: w, From: 6, To: 10, Factor: 6})
		}
		if k < n {
			from := 3 + r.Intn(2)
			s.Events = append(s.Events, Event{Kind: Drop, Worker: k, From: from, To: from + 2})
		}
	case AdversarialWave:
		// One redundancy worker at a time turns Byzantine for a three-
		// iteration window, then the wave moves on — at most one concurrent
		// corruption, inside every scheme's M = 1 budget.
		start := 1 + r.Intn(2)
		for i := 0; i < minInt(2, n-k); i++ {
			s.Events = append(s.Events, Event{Kind: Byzantine, Worker: k + i, From: start + 3*i, To: start + 3*i + 3})
		}
	case FlashCrowd:
		// A permanently slower node class (a third of the fleet at 2x) plus
		// a uniform 3x load spike: heterogeneity without relative
		// stragglers beyond the class gap.
		for _, w := range pick(r, n, n/3) {
			s.Events = append(s.Events, Event{Kind: Slowdown, Worker: w, From: 0, To: 0, Factor: 2})
		}
		to := 6 + r.Intn(2)
		for w := 0; w < n; w++ {
			s.Events = append(s.Events, Event{Kind: Slowdown, Worker: w, From: 4, To: to, Factor: 3})
		}
	default:
		return nil, fmt.Errorf("scenario: unknown profile %q (presets: %v)", name, Profiles())
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: profile %q generated an invalid timeline: %w", name, err)
	}
	return s, nil
}

// churnSlowCount is how many core workers the churn preset's slowdown wave
// hits: 3 where the core allows it, fewer on tiny deployments.
func churnSlowCount(k int) int { return minInt(3, k) }

// pick draws count distinct workers from [0, n), sorted.
func pick(r *rand.Rand, n, count int) []int {
	if count > n {
		count = n
	}
	ws := append([]int(nil), r.Perm(n)[:count]...)
	sort.Ints(ws)
	return ws
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
