package simnet

// Dynamics is the time-varying environment interface executors consult each
// round. The static latency model in Config describes a world that never
// changes; Dynamics overlays the changes — per-worker rate curves, link
// degradation, node churn, and message loss — as functions of (worker,
// iteration), so the same deterministic event-queue machinery exercises the
// adaptive protocol paths against drifting conditions.
//
// internal/scenario compiles declarative fault timelines into this
// interface; executors treat a nil Dynamics as Static.
type Dynamics interface {
	// ComputeFactor multiplies the worker's compute time at the given
	// iteration (1 = nominal speed, 10 = an order-of-magnitude straggler).
	ComputeFactor(worker, iter int) float64
	// LinkFactor multiplies the worker's link time at the given iteration
	// (1 = nominal, 4 = a congested or degraded link).
	LinkFactor(worker, iter int) float64
	// Crashed reports that the worker is down for the whole iteration: it
	// computes nothing and no result ever arrives (an erasure).
	Crashed(worker, iter int) bool
	// Dropped reports that the worker's result message is lost in transit
	// at the given iteration: the work is done but the master never sees
	// it (an erasure that still burned worker time).
	Dropped(worker, iter int) bool
}

// Static is the identity Dynamics: the steady world every pre-scenario
// experiment ran in.
type Static struct{}

// ComputeFactor implements Dynamics.
func (Static) ComputeFactor(int, int) float64 { return 1 }

// LinkFactor implements Dynamics.
func (Static) LinkFactor(int, int) float64 { return 1 }

// Crashed implements Dynamics.
func (Static) Crashed(int, int) bool { return false }

// Dropped implements Dynamics.
func (Static) Dropped(int, int) bool { return false }
