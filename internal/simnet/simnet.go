// Package simnet models the timing of the paper's DCOMP/Minnow testbed as a
// deterministic virtual-time simulation.
//
// This is the substitution documented in DESIGN.md: the paper deploys on 13
// physical Minnow nodes (quad-core Intel Atom, 2 GB RAM, 1 GbE); we cannot.
// What the paper's experiments actually measure, however, is *who the master
// must wait for*: per-iteration wall time decomposes into worker compute
// time, link time, and master-side verify/decode time, with stragglers
// multiplying worker compute by roughly an order of magnitude. All of those
// are functions of operation counts and byte counts, which we know exactly.
// simnet assigns each message a virtual timestamp from calibrated rate
// models; masters process arrivals in timestamp order through an event
// queue. Workers still perform the real field arithmetic, so results are
// bit-exact — only the clock is simulated, which makes every figure
// reproducible from a seed on any machine.
//
// Calibration: a Minnow-class Atom core sustains ~10⁸ field mul-adds per
// second in this workload's access pattern; a 1 GbE link moves ~1.25·10⁸
// bytes/s (1.56·10⁷ field elements) with sub-millisecond loopback latency.
// The straggler factor defaults to 10×, matching the paper's "up to an
// order of magnitude" characterisation. Absolute seconds differ from the
// paper's testbed; ratios and orderings — everything the figures assert —
// are preserved.
package simnet

import (
	"container/heap"
	"math/rand"
)

// Config holds the latency model parameters. All rates are per virtual
// second.
type Config struct {
	// WorkerOpsPerSec is the field multiply-accumulate throughput of one
	// worker node.
	WorkerOpsPerSec float64
	// MasterOpsPerSec is the master's throughput for verify/decode work.
	// The paper's master is the same node class as the workers.
	MasterOpsPerSec float64
	// LinkLatency is the fixed per-message overhead in seconds.
	LinkLatency float64
	// LinkElemsPerSec is how many field elements the link moves per second
	// (bandwidth / 8 bytes).
	LinkElemsPerSec float64
	// StragglerFactor multiplies a straggling worker's compute time.
	StragglerFactor float64
	// JitterFrac is the maximum relative jitter applied to compute times,
	// drawn uniformly from [0, JitterFrac).
	JitterFrac float64
}

// DefaultConfig returns the Minnow-class calibration described in the
// package comment.
func DefaultConfig() Config {
	return Config{
		WorkerOpsPerSec: 1e8,
		MasterOpsPerSec: 1e8,
		LinkLatency:     0.0005,
		LinkElemsPerSec: 1.56e7,
		StragglerFactor: 10,
		JitterFrac:      0.05,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() bool {
	return c.WorkerOpsPerSec > 0 && c.MasterOpsPerSec > 0 &&
		c.LinkLatency >= 0 && c.LinkElemsPerSec > 0 &&
		c.StragglerFactor >= 1 && c.JitterFrac >= 0
}

// ComputeTime returns the virtual seconds a worker needs for ops
// multiply-accumulates, applying the straggler multiplier and jitter.
func (c Config) ComputeTime(ops float64, straggler bool, rng *rand.Rand) float64 {
	t := ops / c.WorkerOpsPerSec
	if straggler {
		t *= c.StragglerFactor
	}
	if c.JitterFrac > 0 && rng != nil {
		t *= 1 + rng.Float64()*c.JitterFrac
	}
	return t
}

// MasterTime returns the virtual seconds the master needs for ops
// multiply-accumulates (verification checks, decode solves).
func (c Config) MasterTime(ops float64) float64 {
	return ops / c.MasterOpsPerSec
}

// CommTime returns the virtual seconds to move elems field elements over
// one link, including the fixed latency.
func (c Config) CommTime(elems int) float64 {
	return c.LinkLatency + float64(elems)/c.LinkElemsPerSec
}

// Arrival is a timestamped message in the event queue.
type Arrival struct {
	// At is the virtual arrival time in seconds.
	At float64
	// Worker identifies the sender.
	Worker int
	// Payload carries whatever the protocol attaches (typically a result
	// vector plus timing breakdown).
	Payload any
	// seq breaks timestamp ties deterministically in insertion order.
	seq int
}

// Queue is a deterministic min-heap of arrivals ordered by (At, seq).
type Queue struct {
	h   arrivalHeap
	seq int
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{} }

// Push inserts an arrival.
func (q *Queue) Push(at float64, worker int, payload any) {
	q.seq++
	heap.Push(&q.h, Arrival{At: at, Worker: worker, Payload: payload, seq: q.seq})
}

// Pop removes and returns the earliest arrival; ok is false when empty.
func (q *Queue) Pop() (Arrival, bool) {
	if len(q.h) == 0 {
		return Arrival{}, false
	}
	return heap.Pop(&q.h).(Arrival), true
}

// Peek returns the earliest arrival without removing it.
func (q *Queue) Peek() (Arrival, bool) {
	if len(q.h) == 0 {
		return Arrival{}, false
	}
	return q.h[0], true
}

// Len returns the number of queued arrivals.
func (q *Queue) Len() int { return len(q.h) }

type arrivalHeap []Arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(Arrival)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
