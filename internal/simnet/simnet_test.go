package simnet

import (
	"math/rand"
	"sort"
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if !DefaultConfig().Validate() {
		t.Fatal("default config invalid")
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	bad := []Config{
		{},
		{WorkerOpsPerSec: -1, MasterOpsPerSec: 1, LinkElemsPerSec: 1, StragglerFactor: 1},
		{WorkerOpsPerSec: 1, MasterOpsPerSec: 1, LinkElemsPerSec: 1, StragglerFactor: 0.5},
		{WorkerOpsPerSec: 1, MasterOpsPerSec: 1, LinkElemsPerSec: 1, StragglerFactor: 1, LinkLatency: -1},
	}
	for i, c := range bad {
		if c.Validate() {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestComputeTimeScaling(t *testing.T) {
	c := DefaultConfig()
	c.JitterFrac = 0
	base := c.ComputeTime(1e8, false, nil)
	if base != 1.0 {
		t.Fatalf("1e8 ops at 1e8 ops/s = %g s, want 1", base)
	}
	slow := c.ComputeTime(1e8, true, nil)
	if slow != 10.0 {
		t.Fatalf("straggler time %g, want 10", slow)
	}
	if c.ComputeTime(2e8, false, nil) != 2*base {
		t.Fatal("compute time not linear in ops")
	}
}

func TestJitterBounds(t *testing.T) {
	c := DefaultConfig()
	c.JitterFrac = 0.05
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		tm := c.ComputeTime(1e8, false, rng)
		if tm < 1.0 || tm >= 1.05 {
			t.Fatalf("jittered time %g outside [1, 1.05)", tm)
		}
	}
}

func TestJitterDeterministicFromSeed(t *testing.T) {
	c := DefaultConfig()
	a := c.ComputeTime(1e6, false, rand.New(rand.NewSource(42)))
	b := c.ComputeTime(1e6, false, rand.New(rand.NewSource(42)))
	if a != b {
		t.Fatal("same seed produced different times")
	}
}

func TestCommTime(t *testing.T) {
	c := Config{LinkLatency: 0.001, LinkElemsPerSec: 1000, WorkerOpsPerSec: 1, MasterOpsPerSec: 1, StragglerFactor: 1}
	if got := c.CommTime(0); got != 0.001 {
		t.Fatalf("empty message time %g, want pure latency", got)
	}
	if got := c.CommTime(1000); got != 1.001 {
		t.Fatalf("1000-elem message time %g, want 1.001", got)
	}
}

func TestMasterTime(t *testing.T) {
	c := DefaultConfig()
	if c.MasterTime(1e8) != 1.0 {
		t.Fatal("master time wrong")
	}
}

func TestQueueOrdersByTime(t *testing.T) {
	q := NewQueue()
	times := []float64{0.5, 0.1, 0.9, 0.3, 0.7}
	for i, at := range times {
		q.Push(at, i, nil)
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	for _, want := range sorted {
		a, ok := q.Pop()
		if !ok || a.At != want {
			t.Fatalf("pop = %v, want t=%g", a, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestQueueTieBreakInsertionOrder(t *testing.T) {
	q := NewQueue()
	for w := 0; w < 10; w++ {
		q.Push(1.0, w, nil)
	}
	for w := 0; w < 10; w++ {
		a, _ := q.Pop()
		if a.Worker != w {
			t.Fatalf("tie broken out of insertion order: got worker %d at pos %d", a.Worker, w)
		}
	}
}

func TestQueuePeekAndLen(t *testing.T) {
	q := NewQueue()
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty queue succeeded")
	}
	q.Push(2.0, 1, "a")
	q.Push(1.0, 2, "b")
	if q.Len() != 2 {
		t.Fatal("len wrong")
	}
	a, ok := q.Peek()
	if !ok || a.Worker != 2 || a.Payload.(string) != "b" {
		t.Fatalf("peek = %v", a)
	}
	if q.Len() != 2 {
		t.Fatal("peek consumed an element")
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	q := NewQueue()
	q.Push(5, 0, nil)
	q.Push(1, 1, nil)
	if a, _ := q.Pop(); a.Worker != 1 {
		t.Fatal("wrong first pop")
	}
	q.Push(3, 2, nil)
	q.Push(4, 3, nil)
	if a, _ := q.Pop(); a.Worker != 2 {
		t.Fatal("wrong second pop")
	}
	if a, _ := q.Pop(); a.Worker != 3 {
		t.Fatal("wrong third pop")
	}
	if a, _ := q.Pop(); a.Worker != 0 {
		t.Fatal("wrong last pop")
	}
}

func TestStragglerDominatesVerifyCost(t *testing.T) {
	// The shape behind Fig. 4(b)/(c): a straggling worker's compute time
	// must dwarf the master's O(m+d) verification time at realistic sizes.
	c := DefaultConfig()
	c.JitterFrac = 0
	m, d, k := 6000.0, 5000.0, 9.0
	workerOps := (m / k) * d // shard matvec
	verifyOps := m/k + d     // Freivalds check
	straggler := c.ComputeTime(workerOps, true, nil)
	verify := c.MasterTime(verifyOps)
	if straggler < 100*verify {
		t.Fatalf("straggler %.4g s not ≫ verify %.4g s — calibration broken", straggler, verify)
	}
}
