package attack

import (
	"math/rand"
	"testing"

	"repro/internal/field"
)

var f = field.Default()

func TestHonestIsIdentity(t *testing.T) {
	v := []field.Elem{1, 2, 3}
	got := Honest{}.Apply(f, 0, v)
	if !field.EqualVec(got, v) {
		t.Fatal("honest behaviour modified output")
	}
}

func TestReverseValue(t *testing.T) {
	v := []field.Elem{1, 2, 0}
	got := ReverseValue{C: 1}.Apply(f, 3, v)
	want := []field.Elem{f.Neg(1), f.Neg(2), 0}
	if !field.EqualVec(got, want) {
		t.Fatalf("reverse = %v, want %v", got, want)
	}
	// Input must not be mutated.
	if v[0] != 1 {
		t.Fatal("reverse mutated its input")
	}
	// c = 3 scales too.
	got3 := ReverseValue{C: 3}.Apply(f, 0, v)
	if got3[1] != f.Neg(6) {
		t.Fatal("reverse with c=3 wrong")
	}
	// Zero C defaults to 1 rather than erasing the attack.
	got0 := ReverseValue{}.Apply(f, 0, v)
	if !field.EqualVec(got0, want) {
		t.Fatal("zero C should behave like C=1")
	}
}

func TestConstant(t *testing.T) {
	v := []field.Elem{1, 2, 3, 4}
	got := Constant{V: 9}.Apply(f, 0, v)
	for _, x := range got {
		if x != 9 {
			t.Fatal("constant attack not constant")
		}
	}
	if len(got) != len(v) {
		t.Fatal("constant attack changed dimension")
	}
}

func TestRandomGarbageDiffersAndIsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := RandomGarbage{Rng: rng}
	v := make([]field.Elem, 64)
	a1 := b.Apply(f, 0, v)
	a2 := b.Apply(f, 1, v)
	if field.EqualVec(a1, a2) {
		t.Fatal("random garbage repeated (astronomically unlikely)")
	}
	for _, x := range a1 {
		if x >= f.Q() {
			t.Fatal("garbage not canonical")
		}
	}
}

func TestIntermittent(t *testing.T) {
	b := Intermittent{Inner: Constant{V: 7}, Period: 3, Phase: 1}
	v := []field.Elem{5, 5}
	for iter := 0; iter < 9; iter++ {
		got := b.Apply(f, iter, v)
		if iter%3 == 1 {
			if got[0] != 7 {
				t.Fatalf("iter %d should attack", iter)
			}
		} else if got[0] != 5 {
			t.Fatalf("iter %d should be honest", iter)
		}
	}
	// Period <= 0 degrades to always-on.
	always := Intermittent{Inner: Constant{V: 7}, Period: 0}
	if always.Apply(f, 5, v)[0] != 7 {
		t.Fatal("period 0 should always attack")
	}
}

func TestNames(t *testing.T) {
	for b, want := range map[Behavior]string{
		Honest{}:                            "honest",
		ReverseValue{}:                      "reverse",
		Constant{}:                          "constant",
		Intermittent{Inner: ReverseValue{}}: "intermittent-reverse",
		RandomGarbage{}:                     "random",
	} {
		if b.Name() != want {
			t.Errorf("Name() = %q, want %q", b.Name(), want)
		}
	}
}

func TestFixedStragglers(t *testing.T) {
	s := NewFixedStragglers(2, 5)
	for iter := 0; iter < 3; iter++ {
		if !s.IsStraggler(2, iter) || !s.IsStraggler(5, iter) {
			t.Fatal("fixed stragglers missing")
		}
		if s.IsStraggler(0, iter) || s.IsStraggler(11, iter) {
			t.Fatal("non-straggler flagged")
		}
	}
}

func TestNoStragglers(t *testing.T) {
	var s NoStragglers
	for w := 0; w < 12; w++ {
		if s.IsStraggler(w, 0) {
			t.Fatal("NoStragglers flagged someone")
		}
	}
}

func TestPhased(t *testing.T) {
	// Fig. 5 scenario shape: nothing before iteration 1, three stragglers after.
	p := Phased{
		Before: NoStragglers{},
		After:  NewFixedStragglers(0, 1, 2),
		Switch: 1,
	}
	if p.IsStraggler(0, 0) {
		t.Fatal("straggler before the switch")
	}
	if !p.IsStraggler(0, 1) || !p.IsStraggler(2, 40) {
		t.Fatal("stragglers missing after the switch")
	}
	if p.IsStraggler(3, 10) {
		t.Fatal("unexpected straggler after switch")
	}
}

func TestRotating(t *testing.T) {
	r := Rotating{N: 4, Count: 2}
	for iter := 0; iter < 8; iter++ {
		count := 0
		for w := 0; w < 4; w++ {
			if r.IsStraggler(w, iter) {
				count++
			}
		}
		if count != 2 {
			t.Fatalf("iter %d: %d stragglers, want 2", iter, count)
		}
	}
	// The straggling set must actually move.
	if r.IsStraggler(0, 0) == r.IsStraggler(0, 2) && r.IsStraggler(1, 0) == r.IsStraggler(1, 2) &&
		r.IsStraggler(2, 0) == r.IsStraggler(2, 2) && r.IsStraggler(3, 0) == r.IsStraggler(3, 2) {
		t.Fatal("rotation appears static")
	}
	// Degenerate configs straggle nobody.
	if (Rotating{N: 0, Count: 1}).IsStraggler(0, 0) {
		t.Fatal("N=0 should disable rotation")
	}
}

func TestActiveFrom(t *testing.T) {
	b := ActiveFrom{Inner: Constant{V: 9}, Start: 3}
	v := []field.Elem{4, 4}
	for iter := 0; iter < 6; iter++ {
		got := b.Apply(f, iter, v)
		if iter < 3 {
			if got[0] != 4 {
				t.Fatalf("iter %d should be honest before Start", iter)
			}
		} else if got[0] != 9 {
			t.Fatalf("iter %d should attack from Start on", iter)
		}
	}
	if b.Name() != "delayed-constant" {
		t.Fatalf("Name = %q", b.Name())
	}
}
