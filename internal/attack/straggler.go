package attack

// Straggler schedules decide which workers are slow at which iteration.
// The paper's experiments hold straggler identities fixed per run (S nodes
// with ~10× latency); the dynamic-coding experiment (Fig. 5) needs the
// population to change at a specific iteration, which Phased provides.

// StragglerSchedule reports whether a worker straggles at an iteration.
type StragglerSchedule interface {
	IsStraggler(worker, iter int) bool
}

// NoStragglers is the straggler-free environment of Fig. 4(a).
type NoStragglers struct{}

// IsStraggler implements StragglerSchedule.
func (NoStragglers) IsStraggler(int, int) bool { return false }

// FixedStragglers marks a fixed set of workers as permanently slow.
type FixedStragglers struct {
	set map[int]bool
}

// NewFixedStragglers builds a schedule for the given worker indices.
func NewFixedStragglers(workers ...int) FixedStragglers {
	s := FixedStragglers{set: make(map[int]bool, len(workers))}
	for _, w := range workers {
		s.set[w] = true
	}
	return s
}

// IsStraggler implements StragglerSchedule.
func (s FixedStragglers) IsStraggler(worker, _ int) bool { return s.set[worker] }

// Phased switches from one schedule to another at iteration Switch —
// used by the Fig. 5 scenario where three stragglers appear at iteration 1.
type Phased struct {
	Before StragglerSchedule
	After  StragglerSchedule
	Switch int
}

// IsStraggler implements StragglerSchedule.
func (p Phased) IsStraggler(worker, iter int) bool {
	if iter < p.Switch {
		return p.Before.IsStraggler(worker, iter)
	}
	return p.After.IsStraggler(worker, iter)
}

// Rotating makes a sliding window of Count workers straggle, shifting by one
// each iteration — a worst-ish case for static code assignments used in
// ablation benches.
type Rotating struct {
	N     int // total workers
	Count int // simultaneous stragglers
}

// IsStraggler implements StragglerSchedule.
func (r Rotating) IsStraggler(worker, iter int) bool {
	if r.N <= 0 || r.Count <= 0 {
		return false
	}
	start := iter % r.N
	for i := 0; i < r.Count; i++ {
		if (start+i)%r.N == worker {
			return true
		}
	}
	return false
}
