// Package attack implements the adversarial worker behaviours of the
// paper's threat model (Section III-A) and evaluation (Section V):
//
//   - Reverse value attack: a Byzantine worker that should send z sends
//     −c·z for some c > 0 (the paper evaluates c = 1) — a "weak" attack
//     whose perturbations partially cancel during training.
//   - Constant attack: the worker always sends a fixed constant vector —
//     a "strong" attack that consistently drags gradients off course.
//   - Random garbage: uniform field noise, used in tests as the
//     unstructured worst case.
//
// Behaviours are deterministic functions of (iteration, honest output) so
// experiment runs are reproducible, and are composed with straggler
// schedules that decide per (worker, iteration) who is slow.
package attack

import (
	"math/rand"

	"repro/internal/field"
)

// Behavior transforms a worker's honest output into what it actually sends.
// Implementations must not mutate honest; they return a fresh slice when
// they corrupt and may return honest itself when they do not.
type Behavior interface {
	// Apply returns the (possibly corrupted) vector the worker transmits at
	// the given training iteration.
	Apply(f *field.Field, iter int, honest []field.Elem) []field.Elem
	// Name identifies the behaviour in logs and experiment tables.
	Name() string
}

// Honest is the identity behaviour.
type Honest struct{}

// Apply returns the honest output unchanged.
func (Honest) Apply(_ *field.Field, _ int, honest []field.Elem) []field.Elem { return honest }

// Name implements Behavior.
func (Honest) Name() string { return "honest" }

// ReverseValue sends −C·z instead of z (paper Section V, "Reversed Value
// Attack"). C must be nonzero for the attack to corrupt anything; the paper
// sets C = 1.
type ReverseValue struct {
	C field.Elem
}

// Apply implements Behavior.
func (a ReverseValue) Apply(f *field.Field, _ int, honest []field.Elem) []field.Elem {
	c := a.C
	if c == 0 {
		c = 1
	}
	out := make([]field.Elem, len(honest))
	for i, v := range honest {
		out[i] = f.Neg(f.Mul(c, v))
	}
	return out
}

// Name implements Behavior.
func (ReverseValue) Name() string { return "reverse" }

// Constant always sends the value V in every coordinate (paper Section V,
// "Constant Byzantine Attack").
type Constant struct {
	V field.Elem
}

// Apply implements Behavior.
func (a Constant) Apply(_ *field.Field, _ int, honest []field.Elem) []field.Elem {
	out := make([]field.Elem, len(honest))
	for i := range out {
		out[i] = a.V
	}
	return out
}

// Name implements Behavior.
func (Constant) Name() string { return "constant" }

// RandomGarbage sends fresh uniform noise each call, seeded per worker so
// runs are reproducible.
type RandomGarbage struct {
	Rng *rand.Rand
}

// Apply implements Behavior.
func (a RandomGarbage) Apply(f *field.Field, _ int, honest []field.Elem) []field.Elem {
	return f.RandVec(a.Rng, len(honest))
}

// Name implements Behavior.
func (RandomGarbage) Name() string { return "random" }

// ActiveFrom wraps a behaviour that stays dormant until iteration Start —
// the paper's Fig. 5 scenario has a node turn Byzantine at iteration 1.
type ActiveFrom struct {
	Inner Behavior
	Start int
}

// Apply implements Behavior.
func (a ActiveFrom) Apply(f *field.Field, iter int, honest []field.Elem) []field.Elem {
	if iter < a.Start {
		return honest
	}
	return a.Inner.Apply(f, iter, honest)
}

// Name implements Behavior.
func (a ActiveFrom) Name() string { return "delayed-" + a.Inner.Name() }

// Intermittent wraps a behaviour that only activates on iterations where
// iter % Period == Phase — modelling dynamically malicious nodes that the
// paper's threat model explicitly allows ("at any given time, some of the
// worker nodes can send arbitrary results").
type Intermittent struct {
	Inner  Behavior
	Period int
	Phase  int
}

// Apply implements Behavior.
func (a Intermittent) Apply(f *field.Field, iter int, honest []field.Elem) []field.Elem {
	if a.Period <= 0 || iter%a.Period == a.Phase%a.Period {
		return a.Inner.Apply(f, iter, honest)
	}
	return honest
}

// Name implements Behavior.
func (a Intermittent) Name() string { return "intermittent-" + a.Inner.Name() }
