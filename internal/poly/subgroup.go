package poly

// Subgroup evaluation and interpolation — the O(N log N) replacement for
// the Lagrange formulas when the evaluation points can be laid out inside a
// power-of-two multiplicative subgroup of F_q* (which requires an
// NTT-friendly modulus; see internal/field/ntt.go and DESIGN.md §12).
//
// The codec problem is systematic Reed–Solomon: given a column's K data
// values, find the unique degree-<K interpolant through the K data points
// and evaluate it at all N code points. Over arbitrary distinct points
// (field.DistinctPoints, the paper's modulus) both directions cost O(N·K)
// per column. Over a subgroup domain both become transforms:
//
//	nn = next power of two ≥ N   — the full domain ⟨ω⟩, ω of order nn
//	hh = largest power of two ≤ K — a subgroup H = ⟨ω^cc⟩, cc = nn/hh
//	r  = K − hh                   — data overflow into the next coset
//
// The nn domain points split into cc cosets ω^t·H. Points are laid out
// coset-major (coset 0 = H first, then coset ω·H, …) so the K data points
// are exactly H plus the first r points of ω·H. Interpolation is then:
//
//  1. a = INTT_hh(data on H): the degree-<hh interpolant on the subgroup.
//  2. The target p (degree < K) differs from a by a multiple of H's
//     vanishing polynomial Z(x) = x^hh − 1: p = a + Z·B with deg B < r.
//     On the coset ω·H, Z is the CONSTANT ζ = ω^hh − 1 (the coset trick),
//     so B's values at the r extra data points fall out of a twisted
//     NTT_hh of a (a's values on ω·H) and one division by ζ.
//  3. B itself is interpolated from its r points; r < K/2, so the dense
//     O(r²) Lagrange build is quadratically smaller than the problem and
//     vanishes at protocol scale (r ≤ a few dozen worker-count-sized
//     points; recursing the same trick would yield O(N log² N) if ever
//     needed).
//
// Evaluation at all N points is one size-nn NTT of p plus an index map
// from the coset-major layout to natural ω-exponent order.

import (
	"fmt"

	"repro/internal/field"
)

// Subgroup is an (n, k) systematic evaluation/interpolation domain embedded
// in the size-nn multiplicative subgroup of F_q*. Immutable after
// construction; safe for concurrent use (the underlying NTT plans are).
type Subgroup struct {
	f    *field.Field
	n, k int
	nn   int // next power of two ≥ n: the full domain size
	hh   int // largest power of two ≤ k: the data subgroup H's order
	cc   int // nn/hh: number of cosets of H in the domain
	r    int // k − hh: data points overflowing into coset ω·H

	big   *field.NTTPlan // size nn, root ω
	small *field.NTTPlan // size hh, root ω^cc (same generator, so exact)

	// points is the full coset-major layout: points[t·hh+j] = ω^(t+j·cc).
	// exps maps a layout index to its natural ω-exponent, the read-out
	// permutation after a size-nn forward transform.
	points []field.Elem
	exps   []int

	// Coset-trick constants, set when r > 0: wpow[i] = ω^i twists a
	// polynomial of degree < hh onto the coset ω·H, and zetaInv is
	// (ω^hh − 1)⁻¹, the inverse of Z's constant value there.
	wpow    []field.Elem
	zetaInv field.Elem
}

// NewSubgroup builds the (n, k) domain, failing with the field's typed
// *field.NTTSizeError when the modulus cannot host a size-nextpow2(n)
// transform — the exact criterion under which internal/mds falls back to
// the Lagrange path.
func NewSubgroup(f *field.Field, n, k int) (*Subgroup, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("poly: invalid subgroup domain (n,k) = (%d,%d)", n, k)
	}
	nn := 1
	for nn < n {
		nn <<= 1
	}
	big, err := f.NTT(nn)
	if err != nil {
		// Wrapped, not returned bare: callers matching the NTT size error
		// must use errors.As (enforced by the typederr analyzer).
		return nil, fmt.Errorf("poly: size-%d subgroup domain: %w", nn, err)
	}
	hh := 1
	for hh<<1 <= k {
		hh <<= 1
	}
	s := &Subgroup{f: f, n: n, k: k, nn: nn, hh: hh, cc: nn / hh, r: k - hh, big: big}
	if s.small, err = f.NTT(hh); err != nil {
		return nil, err // unreachable: hh ≤ nn already fits the 2-adicity
	}
	omega := big.Root()
	s.points = make([]field.Elem, nn)
	s.exps = make([]int, nn)
	for t := 0; t < s.cc; t++ {
		for j := 0; j < hh; j++ {
			e := t + j*s.cc
			s.exps[t*hh+j] = e
			s.points[t*hh+j] = f.Exp(omega, uint64(e))
		}
	}
	if s.r > 0 {
		s.wpow = make([]field.Elem, hh)
		w := field.Elem(1)
		for i := range s.wpow {
			s.wpow[i] = w
			w = f.Mul(w, omega)
		}
		zeta := f.Sub(f.Exp(omega, uint64(hh)), 1)
		// ζ = 0 would need ω^hh = 1, impossible while r > 0 (then k > hh
		// forces nn > hh, and ω has exact order nn).
		s.zetaInv = f.Inv(zeta)
	}
	return s, nil
}

// N and K return the domain's code length and dimension.
func (s *Subgroup) N() int { return s.n }

// K returns the data dimension.
func (s *Subgroup) K() int { return s.k }

// Points returns the n evaluation points in layout order: the first k are
// the data points. The slice is shared and must not be mutated.
func (s *Subgroup) Points() []field.Elem { return s.points[:s.n] }

// Interp returns the coefficients of the unique degree-<k polynomial with
// p(Points()[i]) = y[i] for i < k, in O(nn log nn + r²).
func (s *Subgroup) Interp(y []field.Elem) Poly {
	if len(y) != s.k {
		panic(fmt.Sprintf("poly: Interp got %d values on a k=%d domain", len(y), s.k))
	}
	f := s.f
	// Step 1: the interpolant on the subgroup H.
	a := make(Poly, s.hh, s.k)
	copy(a, y[:s.hh])
	s.small.Inverse(a)
	if s.r == 0 {
		return Normalize(a)
	}
	// Step 2: a's values on the coset ω·H via twist + forward transform:
	// a(ω·η^j) = Σ_i (a_i·ω^i)·η^(ij) with η = ω^cc, the size-hh root.
	twisted := make([]field.Elem, s.hh)
	for i, ai := range a {
		twisted[i] = f.Mul(ai, s.wpow[i])
	}
	s.small.Forward(twisted)
	// B's values at the r extra data points: B = (y − a)/ζ there.
	xs := make([]field.Elem, s.r)
	ys := make([]field.Elem, s.r)
	for j := 0; j < s.r; j++ {
		xs[j] = s.points[s.hh+j]
		ys[j] = f.Mul(f.Sub(y[s.hh+j], twisted[j]), s.zetaInv)
	}
	// Step 3: p = a + (x^hh − 1)·B.
	b := Interpolate(f, xs, ys)
	p := a[:s.k]
	for i := s.hh; i < s.k; i++ {
		p[i] = 0
	}
	for i, bi := range b {
		p[i] = f.Sub(p[i], bi)
		p[s.hh+i] = f.Add(p[s.hh+i], bi)
	}
	return Normalize(p)
}

// Eval writes p's values at the first len(out) layout points into out
// (len(out) ≤ n), in O(nn log nn): zero-pad to the domain size, one forward
// transform, and the layout read-out permutation. deg p must be < nn.
func (s *Subgroup) Eval(p Poly, out []field.Elem) {
	if len(p) > s.nn {
		panic(fmt.Sprintf("poly: Eval degree %d exceeds domain size %d", len(p)-1, s.nn))
	}
	if len(out) > s.n {
		panic(fmt.Sprintf("poly: Eval asked for %d points on an n=%d domain", len(out), s.n))
	}
	buf := make([]field.Elem, s.nn)
	copy(buf, p)
	s.big.Forward(buf)
	for i := range out {
		out[i] = buf[s.exps[i]]
	}
}

// Encode is the systematic codec: out[i] = p(Points()[i]) for the unique
// degree-<k interpolant p through the k data values y. By uniqueness
// out[:k] equals y exactly — the systematic property the MDS layer's
// zero-copy shards rely on.
func (s *Subgroup) Encode(y []field.Elem, out []field.Elem) {
	s.Eval(s.Interp(y), out)
}
