package poly

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/field"
)

// subgroupShapes spans the dispatch-relevant geometry: the paper's (12,9),
// the minimal (4,2), power-of-two and non-power-of-two k, k = n, k = 1, and
// a shape whose r = k − hh remainder is maximal (k = 2^m − 1).
var subgroupShapes = []struct{ n, k int }{
	{12, 9}, {4, 2}, {16, 8}, {12, 7}, {8, 8}, {5, 5}, {6, 1}, {16, 15}, {13, 9}, {32, 17},
}

func TestSubgroupPointsDistinct(t *testing.T) {
	f := field.NTTFriendly()
	for _, sh := range subgroupShapes {
		s, err := NewSubgroup(f, sh.n, sh.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", sh.n, sh.k, err)
		}
		pts := s.Points()
		if len(pts) != sh.n {
			t.Fatalf("(%d,%d): %d points", sh.n, sh.k, len(pts))
		}
		seen := make(map[field.Elem]bool)
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("(%d,%d): duplicate point %d", sh.n, sh.k, p)
			}
			seen[p] = true
		}
	}
}

// TestSubgroupInterpMatchesLagrange pins the transform pipeline to the
// classical reference: Interp must return exactly the polynomial
// Interpolate builds from the same points, and Eval must return exactly
// Horner evaluation — the theorem (uniqueness of the degree-<k
// interpolant) that makes the NTT fast path bit-exact by construction.
func TestSubgroupInterpMatchesLagrange(t *testing.T) {
	f := field.NTTFriendly()
	rng := rand.New(rand.NewSource(21))
	for _, sh := range subgroupShapes {
		s, err := NewSubgroup(f, sh.n, sh.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", sh.n, sh.k, err)
		}
		pts := s.Points()
		for trial := 0; trial < 3; trial++ {
			y := f.RandVec(rng, sh.k)
			if trial == 2 { // worst case: every value at the field's ceiling
				for i := range y {
					y[i] = f.Q() - 1
				}
			}
			p := s.Interp(y)
			want := Interpolate(f, pts[:sh.k], y)
			if !Equal(p, want) {
				t.Fatalf("(%d,%d) trial %d: Interp diverges from Lagrange interpolation", sh.n, sh.k, trial)
			}
			got := make([]field.Elem, sh.n)
			s.Eval(p, got)
			for i, pt := range pts {
				if want := p.Eval(f, pt); got[i] != want {
					t.Fatalf("(%d,%d) trial %d: Eval[%d] = %d, Horner says %d", sh.n, sh.k, trial, i, got[i], want)
				}
			}
		}
	}
}

// TestSubgroupEncodeSystematic checks Encode's defining properties on every
// shape: the first k outputs reproduce the data exactly (zero-copy
// systematic shards depend on this), and all n outputs match the dense
// Lagrange evaluation reference.
func TestSubgroupEncodeSystematic(t *testing.T) {
	f := field.NTTFriendly()
	rng := rand.New(rand.NewSource(22))
	for _, sh := range subgroupShapes {
		s, err := NewSubgroup(f, sh.n, sh.k)
		if err != nil {
			t.Fatalf("(%d,%d): %v", sh.n, sh.k, err)
		}
		pts := s.Points()
		y := f.RandVec(rng, sh.k)
		out := make([]field.Elem, sh.n)
		s.Encode(y, out)
		if !field.EqualVec(out[:sh.k], y) {
			t.Fatalf("(%d,%d): Encode is not systematic", sh.n, sh.k)
		}
		for i := sh.k; i < sh.n; i++ {
			if want := EvalLagrange(f, pts[:sh.k], y, pts[i]); out[i] != want {
				t.Fatalf("(%d,%d): parity %d = %d, Lagrange reference says %d", sh.n, sh.k, i, out[i], want)
			}
		}
	}
}

func TestSubgroupOnPaperModulusSmall(t *testing.T) {
	// The paper's modulus has 2-adicity 3: (8, k) fits, (12, 9) must fail
	// with the field's typed size error — the mds fallback criterion.
	f := field.Default()
	if _, err := NewSubgroup(f, 8, 5); err != nil {
		t.Fatalf("(8,5) on the paper modulus should fit its 2-adicity of 3: %v", err)
	}
	_, err := NewSubgroup(f, 12, 9)
	var sizeErr *field.NTTSizeError
	if !errors.As(err, &sizeErr) {
		t.Fatalf("(12,9) on the paper modulus: got %v, want *field.NTTSizeError", err)
	}
}

func TestSubgroupRejectsBadShapes(t *testing.T) {
	f := field.NTTFriendly()
	for _, sh := range []struct{ n, k int }{{0, 0}, {4, 0}, {3, 4}, {-1, 1}} {
		if _, err := NewSubgroup(f, sh.n, sh.k); err == nil {
			t.Errorf("NewSubgroup(%d,%d) accepted invalid shape", sh.n, sh.k)
		}
	}
}
