// Package poly implements univariate polynomials over F_q: evaluation,
// interpolation, and arithmetic.
//
// Two protocol steps live here. The Lagrange encoder builds
// u(z) = Σ X_j·ℓ_j(z) + Σ W_j·ℓ_j(z) (paper eq. 12–13) and evaluates it at
// the worker points α_i; the decoder interpolates f(u(z)) from the verified
// worker results and reads the outputs back at the data points β_j. The LCC
// *baseline* additionally needs to correct Byzantine errors during
// interpolation, which is the Berlekamp–Welch decoder in bw.go.
package poly

import (
	"repro/internal/field"
)

// Poly is a coefficient-form polynomial c[0] + c[1]·z + …, always normalised
// so the last coefficient is nonzero (the zero polynomial is the empty
// slice).
type Poly []field.Elem

// Normalize trims leading (high-degree) zero coefficients.
func Normalize(p Poly) Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree, with -1 for the zero polynomial.
func (p Poly) Degree() int { return len(Normalize(p)) - 1 }

// Eval evaluates p at z by Horner's rule.
func (p Poly) Eval(f *field.Field, z field.Elem) field.Elem {
	var acc field.Elem
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, z), p[i])
	}
	return acc
}

// EvalMany evaluates p at each point.
func (p Poly) EvalMany(f *field.Field, zs []field.Elem) []field.Elem {
	out := make([]field.Elem, len(zs))
	for i, z := range zs {
		out[i] = p.Eval(f, z)
	}
	return out
}

// Add returns p + q.
func Add(f *field.Field, p, q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make(Poly, n)
	for i := range out {
		var a, b field.Elem
		if i < len(p) {
			a = p[i]
		}
		if i < len(q) {
			b = q[i]
		}
		out[i] = f.Add(a, b)
	}
	return Normalize(out)
}

// Scale returns c·p.
func Scale(f *field.Field, c field.Elem, p Poly) Poly {
	out := make(Poly, len(p))
	f.ScaleVec(out, c, p)
	return Normalize(out)
}

// Mul returns p·q by schoolbook convolution; all polynomials in this system
// have degree ≤ (K+T−1)·deg f ≈ a few dozen, so O(n²) is the right tool.
func Mul(f *field.Field, p, q Poly) Poly {
	p, q = Normalize(p), Normalize(q)
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, pi := range p {
		if pi == 0 {
			continue
		}
		for j, qj := range q {
			out[i+j] = f.Add(out[i+j], f.Mul(pi, qj))
		}
	}
	return Normalize(out)
}

// DivMod returns quotient and remainder of p / d. It panics on division by
// the zero polynomial.
func DivMod(f *field.Field, p, d Poly) (quo, rem Poly) {
	d = Normalize(d)
	if len(d) == 0 {
		panic("poly: division by zero polynomial")
	}
	rem = append(Poly(nil), Normalize(p)...)
	if len(rem) < len(d) {
		return nil, rem
	}
	quo = make(Poly, len(rem)-len(d)+1)
	dLeadInv := f.Inv(d[len(d)-1])
	for len(rem) >= len(d) {
		shift := len(rem) - len(d)
		c := f.Mul(rem[len(rem)-1], dLeadInv)
		quo[shift] = c
		for i, di := range d {
			rem[shift+i] = f.Sub(rem[shift+i], f.Mul(c, di))
		}
		rem = Normalize(rem)
		if len(rem) == 0 {
			break
		}
		if len(rem)-len(d) < 0 {
			break
		}
	}
	return Normalize(quo), Normalize(rem)
}

// Interpolate returns the unique polynomial of degree < len(xs) passing
// through all (xs[i], ys[i]) via the Lagrange formula. Points must be
// distinct; the caller guarantees this by construction of the code's
// evaluation points.
func Interpolate(f *field.Field, xs, ys []field.Elem) Poly {
	if len(xs) != len(ys) {
		panic("poly: Interpolate length mismatch")
	}
	n := len(xs)
	if n == 0 {
		return nil
	}
	result := make(Poly, 0, n)
	for j, lj := range LagrangeBasisAll(f, xs) {
		result = Add(f, result, Scale(f, ys[j], lj))
	}
	return Normalize(result)
}

// LagrangeBasis returns ℓ_j(z) = Π_{k≠j} (z−x_k)/(x_j−x_k) in coefficient
// form (paper eq. 13).
func LagrangeBasis(f *field.Field, xs []field.Elem, j int) Poly {
	num := Poly{1}
	denom := field.Elem(1)
	for k, xk := range xs {
		if k == j {
			continue
		}
		num = Mul(f, num, Poly{f.Neg(xk), 1})
		denom = f.Mul(denom, f.Sub(xs[j], xk))
	}
	return Scale(f, f.Inv(denom), num)
}

// LagrangeBasisAll returns every basis polynomial ℓ_0..ℓ_{n−1} at once, in
// O(n²) total: the master polynomial M(z) = Π_k (z−x_k) is built once, each
// numerator M/(z−x_j) falls out of a length-n synthetic division, and all n
// denominators are inverted in one field.InvMany batch. Building the bases
// one at a time (LagrangeBasis) costs O(n²) polynomial work PLUS a Fermat
// inversion PER basis — this is the encoder-side analogue of the decode
// plans in internal/mds and internal/lcc.
func LagrangeBasisAll(f *field.Field, xs []field.Elem) []Poly {
	n := len(xs)
	if n == 0 {
		return nil
	}
	// Master polynomial M(z) = Π_k (z−x_k), degree n.
	master := make(Poly, n+1)
	master[0] = 1
	deg := 0
	for _, xk := range xs {
		// Multiply by (z − x_k) in place: shift up and subtract x_k·coeff.
		master[deg+1] = master[deg]
		for i := deg; i > 0; i-- {
			master[i] = f.Sub(master[i-1], f.Mul(xk, master[i]))
		}
		master[0] = f.Mul(f.Neg(xk), master[0])
		deg++
	}
	invDen := f.InvMany(lagrangeDenominators(f, xs))
	out := make([]Poly, n)
	for j, xj := range xs {
		// Synthetic division: q(z) = M(z)/(z−x_j), exact because x_j is a
		// root. Coefficients emerge highest-first via Horner's recurrence.
		q := make(Poly, n)
		carry := master[n]
		for i := n - 1; i >= 0; i-- {
			q[i] = carry
			carry = f.Add(master[i], f.Mul(xj, carry))
		}
		out[j] = Scale(f, invDen[j], q)
	}
	return out
}

// EvalLagrange evaluates the interpolant of (xs, ys) directly at point z
// without building coefficients — the decode hot path uses the barycentric
// form below instead; this is the simple reference used in tests.
func EvalLagrange(f *field.Field, xs, ys []field.Elem, z field.Elem) field.Elem {
	var acc field.Elem
	for j := range xs {
		w := ys[j]
		for k, xk := range xs {
			if k == j {
				continue
			}
			w = f.Mul(w, f.Div(f.Sub(z, xk), f.Sub(xs[j], xk)))
		}
		acc = f.Add(acc, w)
	}
	return acc
}

// Equal reports whether two polynomials are identical after normalisation.
func Equal(p, q Poly) bool {
	p, q = Normalize(p), Normalize(q)
	return field.EqualVec(p, q)
}
