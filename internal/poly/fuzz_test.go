package poly

import (
	"math/rand"
	"testing"
)

// Native fuzz targets; the seed corpus runs under plain `go test`, and
// `go test -fuzz=FuzzX ./internal/poly` explores further.

// FuzzInterpolateRoundTrip: interpolation through deg+1 evaluations of an
// arbitrary polynomial must recover it exactly — the decode primitive of
// every code in the repository, explored over random coefficients.
func FuzzInterpolateRoundTrip(fz *testing.F) {
	fz.Add(int64(1), uint8(3))
	fz.Add(int64(42), uint8(0))
	fz.Add(int64(-7), uint8(11))
	fz.Fuzz(func(t *testing.T, seed int64, degRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		deg := int(degRaw % 12)
		p := randPoly(rng, deg)
		xs := f.DistinctPoints(deg+1, uint64(1+rng.Intn(64)))
		ys := p.EvalMany(f, xs)
		got := Interpolate(f, xs, ys)
		if !Equal(got, p) {
			t.Fatalf("interpolation failed at degree %d", deg)
		}
	})
}

// FuzzBWOneError: Berlekamp–Welch must correct one arbitrary corruption at
// an arbitrary position of an arbitrary codeword.
func FuzzBWOneError(fz *testing.F) {
	fz.Add(int64(1), uint8(0), uint64(5))
	fz.Add(int64(9), uint8(7), uint64(1))
	fz.Fuzz(func(t *testing.T, seed int64, posRaw uint8, delta uint64) {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		n := k + 2
		p := randPoly(rng, k-1)
		xs := f.DistinctPoints(n, 1)
		ys := p.EvalMany(f, xs)
		pos := int(posRaw) % n
		ys[pos] = f.Add(ys[pos], 1+delta%(f.Q()-1))
		got, err := DecodeBW(f, xs, ys, k, 1)
		if err != nil {
			t.Fatalf("BW failed: %v", err)
		}
		if !Equal(got, p) {
			t.Fatal("BW returned the wrong polynomial")
		}
	})
}
