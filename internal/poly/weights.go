package poly

import (
	"encoding/binary"
	"sync"

	"repro/internal/field"
)

// Vector-valued interpolation support. Worker results are vectors over F_q
// (e.g. X̃_i·w ∈ F_q^{m/K}); interpolating the vector-valued polynomial
// f(u(z)) component-wise and evaluating it at a data point β reduces to a
// single weighted sum Σ_j w_j·ys_j where the weights depend only on the
// interpolation points and β. Precomputing them turns LCC decode into one
// pass of lazy AXPYs per output block.

// InterpWeights returns weights w with value(target) = Σ_j w[j]·y_j for the
// unique interpolant through the distinct points xs. w[j] = ℓ_j(target).
//
// The numerators Π_{k≠j}(target−x_k) come from prefix/suffix products (O(n)
// multiplies instead of O(n²)), and the n Lagrange denominators are inverted
// with one batched Montgomery-trick inversion (field.InvMany) instead of n
// Fermat exponentiations — the dominant cost of the seed implementation.
func InterpWeights(f *field.Field, xs []field.Elem, target field.Elem) []field.Elem {
	if len(xs) == 0 {
		return nil
	}
	return interpWeightsWith(f, xs, invDenominators(f, xs), target)
}

// InterpWeightsBatch returns InterpWeights(f, xs, t) for every target t,
// sharing one denominator computation and one batched inversion across all
// targets — the denominators depend only on xs. Both the decode plans and
// the generator-matrix builders read out a whole target set per point set.
func InterpWeightsBatch(f *field.Field, xs, targets []field.Elem) [][]field.Elem {
	out := make([][]field.Elem, len(targets))
	if len(xs) == 0 {
		return out
	}
	invDen := invDenominators(f, xs)
	for t, target := range targets {
		out[t] = interpWeightsWith(f, xs, invDen, target)
	}
	return out
}

// interpWeightsWith computes the weights for one target given the
// precomputed inverse Lagrange denominators of xs.
func interpWeightsWith(f *field.Field, xs, invDen []field.Elem, target field.Elem) []field.Elem {
	n := len(xs)
	w := make([]field.Elem, n)
	// w[j] ← Π_{k<j}(target−x_k), then fold in the suffix products so
	// w[j] = Π_{k≠j}(target−x_k).
	pre := field.Elem(1)
	for j, xj := range xs {
		w[j] = pre
		pre = f.Mul(pre, f.Sub(target, xj))
	}
	suf := field.Elem(1)
	for j := n - 1; j >= 0; j-- {
		w[j] = f.Mul(f.Mul(w[j], suf), invDen[j])
		suf = f.Mul(suf, f.Sub(target, xs[j]))
	}
	return w
}

// invDenominators returns the batch-inverted Lagrange denominators of xs.
func invDenominators(f *field.Field, xs []field.Elem) []field.Elem {
	return f.InvMany(lagrangeDenominators(f, xs))
}

// DecodePlans memoizes, for a fixed set of read-out targets, the
// interpolation weights of varying source point sets. This is the decode
// plan cache of the MDS and Lagrange decoders: the targets are the data
// points β_j (fixed at code construction), the sources are the evaluation
// points of whichever verified workers survived the round — and the churn
// scenarios present the same survivor set round after round, so the weight
// computation amortises to a map lookup. Safe for concurrent use.
type DecodePlans struct {
	f       *field.Field
	targets []field.Elem

	mu    sync.Mutex
	plans map[string][][]field.Elem
}

// planCacheCap bounds the memoization map: 128 distinct source sets is far
// beyond any scenario preset's churn, and on overflow the map is reset
// (plans are cheap to rebuild relative to holding them unbounded).
const planCacheCap = 128

// NewDecodePlans builds a cache reading out at the given targets. The
// targets slice is retained and must not be mutated.
func NewDecodePlans(f *field.Field, targets []field.Elem) *DecodePlans {
	return &DecodePlans{f: f, targets: targets, plans: make(map[string][][]field.Elem)}
}

// Weights returns w with w[t][r] = ℓ_r(targets[t]) over the source points
// xs: decoded[t] = Σ_r w[t][r]·results[r]. The result is memoized per
// ordered xs and must not be mutated. xs must be distinct.
func (p *DecodePlans) Weights(xs []field.Elem) [][]field.Elem {
	// The hit path is allocation-free: for point sets up to 64 elements the
	// key bytes live in a stack array, and indexing the map with a
	// string(buf) conversion expression lets the compiler skip
	// materialising the string. Only a miss pays pointSetKey's allocation.
	var arr [256]byte
	var buf []byte
	if 4*len(xs) <= len(arr) {
		buf = arr[:4*len(xs)]
	} else {
		buf = make([]byte, 4*len(xs))
	}
	for i, x := range xs {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(x))
	}
	p.mu.Lock()
	w, ok := p.plans[string(buf)]
	p.mu.Unlock()
	if ok {
		return w
	}
	w = InterpWeightsBatch(p.f, xs, p.targets)
	p.mu.Lock()
	if len(p.plans) >= planCacheCap {
		p.plans = make(map[string][][]field.Elem)
	}
	p.plans[string(buf)] = w
	p.mu.Unlock()
	return w
}

// lagrangeDenominators returns d_j = Π_{k≠j}(x_j−x_k) for all j. The points
// must be distinct, so every d_j is nonzero.
func lagrangeDenominators(f *field.Field, xs []field.Elem) []field.Elem {
	den := make([]field.Elem, len(xs))
	for j, xj := range xs {
		d := field.Elem(1)
		for k, xk := range xs {
			if k == j {
				continue
			}
			d = f.Mul(d, f.Sub(xj, xk))
		}
		den[j] = d
	}
	return den
}

// CombineVectors returns Σ_j w[j]·vecs[j], the vector-valued evaluation that
// pairs with InterpWeights. All vectors must share a length. The sum runs
// through a lazy accumulator: raw multiply-adds with one reduction pass per
// field.LazyBatch contributing vectors (the output slice doubles as the
// uint64 accumulator row, so no scratch is allocated).
func CombineVectors(f *field.Field, w []field.Elem, vecs [][]field.Elem) []field.Elem {
	if len(vecs) == 0 {
		if len(w) != 0 {
			panic("poly: CombineVectors length mismatch")
		}
		return nil
	}
	out := make([]field.Elem, len(vecs[0]))
	CombineVectorsInto(f, out, w, vecs)
	return out
}

// CombineVectorsInto is CombineVectors writing into a caller-owned dst —
// the zero-allocation form the pooled decode path uses. dst is
// overwritten, must match the vectors' length, and must not alias them.
func CombineVectorsInto(f *field.Field, dst []field.Elem, w []field.Elem, vecs [][]field.Elem) {
	if len(w) != len(vecs) {
		panic("poly: CombineVectors length mismatch")
	}
	clear(dst)
	la := f.NewLazyAcc(dst)
	for j, wj := range w {
		if len(vecs[j]) != len(dst) {
			panic("poly: CombineVectors ragged vectors")
		}
		if wj != 0 {
			la.AXPY(wj, vecs[j])
		}
	}
	la.Reduce()
}
