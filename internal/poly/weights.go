package poly

import "repro/internal/field"

// Vector-valued interpolation support. Worker results are vectors over F_q
// (e.g. X̃_i·w ∈ F_q^{m/K}); interpolating the vector-valued polynomial
// f(u(z)) component-wise and evaluating it at a data point β reduces to a
// single weighted sum Σ_j w_j·ys_j where the weights depend only on the
// interpolation points and β. Precomputing them turns LCC decode into one
// pass of AXPYs per output block.

// InterpWeights returns weights w with value(target) = Σ_j w[j]·y_j for the
// unique interpolant through the distinct points xs. w[j] = ℓ_j(target).
func InterpWeights(f *field.Field, xs []field.Elem, target field.Elem) []field.Elem {
	n := len(xs)
	w := make([]field.Elem, n)
	for j := 0; j < n; j++ {
		num := field.Elem(1)
		den := field.Elem(1)
		for k, xk := range xs {
			if k == j {
				continue
			}
			num = f.Mul(num, f.Sub(target, xk))
			den = f.Mul(den, f.Sub(xs[j], xk))
		}
		w[j] = f.Div(num, den)
	}
	return w
}

// CombineVectors returns Σ_j w[j]·vecs[j], the vector-valued evaluation that
// pairs with InterpWeights. All vectors must share a length.
func CombineVectors(f *field.Field, w []field.Elem, vecs [][]field.Elem) []field.Elem {
	if len(w) != len(vecs) {
		panic("poly: CombineVectors length mismatch")
	}
	if len(vecs) == 0 {
		return nil
	}
	out := make([]field.Elem, len(vecs[0]))
	for j, wj := range w {
		if len(vecs[j]) != len(out) {
			panic("poly: CombineVectors ragged vectors")
		}
		if wj == 0 {
			continue
		}
		f.AXPY(out, wj, vecs[j])
	}
	return out
}
