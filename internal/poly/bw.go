package poly

import (
	"errors"
	"fmt"

	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Berlekamp–Welch decoding of Reed–Solomon codes under worst-case errors.
//
// This is the machinery the *LCC baseline* relies on to tolerate Byzantine
// workers, and the algebraic reason LCC pays 2M extra workers per M
// adversaries (paper eq. 1): recovering a degree-(k−1) polynomial from n
// evaluations of which e are arbitrarily wrong requires n ≥ k + 2e. AVCC
// sidesteps this entirely by discarding unverified results and paying only
// M (paper eq. 2); implementing both lets the benchmarks show the gap.

// ErrDecodeFailed reports that no polynomial of the stated degree agrees
// with enough of the received points — more errors occurred than the code
// can correct.
var ErrDecodeFailed = errors.New("poly: Berlekamp–Welch decoding failed")

// DecodeBW recovers the unique polynomial P with deg P < k from points
// (xs[i], ys[i]) of which at most maxErrors are corrupted. It requires
// len(xs) ≥ k + 2·maxErrors and returns ErrDecodeFailed if the received
// word is not within maxErrors of any codeword.
func DecodeBW(f *field.Field, xs, ys []field.Elem, k, maxErrors int) (Poly, error) {
	n := len(xs)
	if len(ys) != n {
		panic("poly: DecodeBW length mismatch")
	}
	if k <= 0 {
		panic("poly: DecodeBW needs k >= 1")
	}
	if maxErrors < 0 {
		panic("poly: DecodeBW negative error bound")
	}
	if n < k+2*maxErrors {
		return nil, fmt.Errorf("poly: %d points cannot correct %d errors at dimension %d (need %d): %w",
			n, maxErrors, k, k+2*maxErrors, ErrDecodeFailed)
	}

	// Try the largest error-locator degree first; if the key equation is
	// inconsistent (which can happen only when fewer errors than guessed
	// occurred in degenerate positions), step down.
	for e := maxErrors; e >= 0; e-- {
		p, err := bwAttempt(f, xs, ys, k, e)
		if err == nil {
			if countDisagreements(f, p, xs, ys) <= maxErrors {
				return p, nil
			}
			continue
		}
	}
	return nil, ErrDecodeFailed
}

// bwAttempt solves the key equation Q(x_i) = y_i·E(x_i) with E monic of
// degree exactly e and deg Q < k+e, then returns P = Q/E.
func bwAttempt(f *field.Field, xs, ys []field.Elem, k, e int) (Poly, error) {
	n := len(xs)
	qLen := k + e // unknown coefficients of Q
	cols := qLen + e
	a := fieldmat.NewMatrix(n, cols)
	b := make([]field.Elem, n)
	for i := 0; i < n; i++ {
		row := a.Row(i)
		// Q coefficients: x^0 .. x^{k+e-1}
		p := field.Elem(1)
		for j := 0; j < qLen; j++ {
			row[j] = p
			p = f.Mul(p, xs[i])
		}
		// E coefficients e_0..e_{e-1} move to the LHS as −y_i·x^j;
		// the monic term y_i·x^e goes to the RHS.
		p = 1
		for j := 0; j < e; j++ {
			row[qLen+j] = f.Neg(f.Mul(ys[i], p))
			p = f.Mul(p, xs[i])
		}
		b[i] = f.Mul(ys[i], p) // y_i·x_i^e
	}
	sol, err := fieldmat.SolveAny(f, a, b)
	if err != nil {
		return nil, err
	}
	q := Normalize(Poly(sol[:qLen]))
	eloc := make(Poly, e+1)
	copy(eloc, sol[qLen:])
	eloc[e] = 1 // monic
	quo, rem := DivMod(f, q, eloc)
	if len(Normalize(rem)) != 0 {
		return nil, ErrDecodeFailed
	}
	if quo.Degree() >= k {
		return nil, ErrDecodeFailed
	}
	return quo, nil
}

func countDisagreements(f *field.Field, p Poly, xs, ys []field.Elem) int {
	bad := 0
	for i := range xs {
		if p.Eval(f, xs[i]) != ys[i] {
			bad++
		}
	}
	return bad
}
