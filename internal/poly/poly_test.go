package poly

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/field"
)

var f = field.Default()

func randPoly(rng *rand.Rand, deg int) Poly {
	p := make(Poly, deg+1)
	for i := range p {
		p[i] = f.Rand(rng)
	}
	p[deg] = f.RandNonZero(rng)
	return p
}

func TestNormalize(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if got := Normalize(p); len(got) != 2 {
		t.Fatalf("Normalize left %d coeffs", len(got))
	}
	if Normalize(Poly{0, 0}).Degree() != -1 {
		t.Fatal("zero polynomial degree should be -1")
	}
}

func TestEvalKnown(t *testing.T) {
	// p(z) = 3 + 2z + z^2, p(5) = 3 + 10 + 25 = 38
	p := Poly{3, 2, 1}
	if got := p.Eval(f, 5); got != 38 {
		t.Fatalf("Eval = %d, want 38", got)
	}
	if got := Poly(nil).Eval(f, 7); got != 0 {
		t.Fatalf("zero poly eval = %d", got)
	}
}

func TestAddScaleMulProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	if err := quick.Check(func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, r.Intn(6))
		q := randPoly(r, r.Intn(6))
		z := f.Rand(r)
		c := f.Rand(r)
		// Evaluation is a ring homomorphism.
		if Add(f, p, q).Eval(f, z) != f.Add(p.Eval(f, z), q.Eval(f, z)) {
			return false
		}
		if Mul(f, p, q).Eval(f, z) != f.Mul(p.Eval(f, z), q.Eval(f, z)) {
			return false
		}
		if Scale(f, c, p).Eval(f, z) != f.Mul(c, p.Eval(f, z)) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestMulDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := randPoly(rng, 3)
	q := randPoly(rng, 4)
	if got := Mul(f, p, q).Degree(); got != 7 {
		t.Fatalf("deg(p·q) = %d, want 7", got)
	}
	if Mul(f, p, nil) != nil {
		t.Fatal("p·0 should be the zero polynomial")
	}
}

func TestDivModRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		p := randPoly(rng, rng.Intn(8))
		d := randPoly(rng, rng.Intn(4))
		quo, rem := DivMod(f, p, d)
		if rem.Degree() >= d.Degree() {
			t.Fatalf("deg rem %d >= deg d %d", rem.Degree(), d.Degree())
		}
		back := Add(f, Mul(f, quo, d), rem)
		if !Equal(back, p) {
			t.Fatalf("q·d + r != p")
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DivMod(f, Poly{1, 2}, Poly{0, 0})
}

func TestInterpolateRecoversPoly(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 20; trial++ {
		deg := rng.Intn(10)
		p := randPoly(rng, deg)
		xs := f.DistinctPoints(deg+1, uint64(1+rng.Intn(100)))
		ys := p.EvalMany(f, xs)
		got := Interpolate(f, xs, ys)
		if !Equal(got, p) {
			t.Fatalf("interpolation failed to recover degree-%d poly", deg)
		}
	}
}

func TestInterpolateExtraPointsStillOnCurve(t *testing.T) {
	// Interpolating through deg+1 points and evaluating elsewhere must
	// reproduce the original polynomial's values — this IS the decode
	// correctness of both MDS and LCC.
	rng := rand.New(rand.NewSource(44))
	p := randPoly(rng, 8)
	xs := f.DistinctPoints(9, 1)
	ys := p.EvalMany(f, xs)
	q := Interpolate(f, xs, ys)
	for z := uint64(100); z < 120; z++ {
		if q.Eval(f, z) != p.Eval(f, z) {
			t.Fatal("interpolant diverges off the sample points")
		}
	}
}

func TestLagrangeBasisKroneckerDelta(t *testing.T) {
	xs := f.DistinctPoints(7, 5)
	for j := range xs {
		lj := LagrangeBasis(f, xs, j)
		for k, xk := range xs {
			want := field.Elem(0)
			if k == j {
				want = 1
			}
			if got := lj.Eval(f, xk); got != want {
				t.Fatalf("ℓ_%d(x_%d) = %d, want %d", j, k, got, want)
			}
		}
	}
}

func TestEvalLagrangeMatchesInterpolate(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := randPoly(rng, 5)
	xs := f.DistinctPoints(6, 3)
	ys := p.EvalMany(f, xs)
	for z := uint64(50); z < 60; z++ {
		direct := EvalLagrange(f, xs, ys, z)
		viaCoeffs := Interpolate(f, xs, ys).Eval(f, z)
		if direct != viaCoeffs {
			t.Fatal("EvalLagrange disagrees with coefficient interpolation")
		}
	}
}

func TestInterpWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	p := randPoly(rng, 6)
	xs := f.DistinctPoints(7, 2)
	ys := p.EvalMany(f, xs)
	for z := uint64(30); z < 40; z++ {
		w := InterpWeights(f, xs, z)
		var acc field.Elem
		for j := range w {
			acc = f.Add(acc, f.Mul(w[j], ys[j]))
		}
		if acc != p.Eval(f, z) {
			t.Fatal("InterpWeights reconstruction mismatch")
		}
	}
}

func TestCombineVectorsMatchesComponentwise(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const dim = 5
	// Vector-valued polynomial = dim scalar polynomials.
	polys := make([]Poly, dim)
	for i := range polys {
		polys[i] = randPoly(rng, 4)
	}
	xs := f.DistinctPoints(5, 1)
	vecs := make([][]field.Elem, len(xs))
	for i, x := range xs {
		v := make([]field.Elem, dim)
		for c := range polys {
			v[c] = polys[c].Eval(f, x)
		}
		vecs[i] = v
	}
	target := field.Elem(77)
	got := CombineVectors(f, InterpWeights(f, xs, target), vecs)
	for c := range polys {
		if got[c] != polys[c].Eval(f, target) {
			t.Fatal("vector combine mismatch at component")
		}
	}
}

// interpWeightsRef is the seed implementation: per-j O(n) products and one
// Fermat inversion per weight. The batched InterpWeights must match it
// bit-exactly, including when the target coincides with a sample point.
func interpWeightsRef(f *field.Field, xs []field.Elem, target field.Elem) []field.Elem {
	n := len(xs)
	w := make([]field.Elem, n)
	for j := 0; j < n; j++ {
		num := field.Elem(1)
		den := field.Elem(1)
		for k, xk := range xs {
			if k == j {
				continue
			}
			num = f.Mul(num, f.Sub(target, xk))
			den = f.Mul(den, f.Sub(xs[j], xk))
		}
		w[j] = f.Div(num, den)
	}
	return w
}

func TestInterpWeightsMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for _, fld := range []*field.Field{f, field.MustNew(97), field.MustNew(2147483647)} {
		for _, n := range []int{1, 2, 5, 12, 23} {
			xs := fld.DistinctPoints(n, 3)
			targets := []field.Elem{0, 1, fld.Rand(rng), fld.Q() - 1}
			// Targets ON the sample points: weights must degenerate to the
			// Kronecker delta, the systematic-decode case.
			targets = append(targets, xs[0], xs[n-1], xs[n/2])
			for _, z := range targets {
				got := InterpWeights(fld, xs, z)
				want := interpWeightsRef(fld, xs, z)
				if !field.EqualVec(got, want) {
					t.Fatalf("q=%d n=%d target=%d: InterpWeights diverges from reference", fld.Q(), n, z)
				}
			}
		}
	}
}

func TestInterpWeightsBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	xs := f.DistinctPoints(9, 5)
	targets := []field.Elem{0, 1, xs[0], xs[8], f.Rand(rng), f.Q() - 1}
	batch := InterpWeightsBatch(f, xs, targets)
	if len(batch) != len(targets) {
		t.Fatalf("batch returned %d weight sets for %d targets", len(batch), len(targets))
	}
	for t2, target := range targets {
		if !field.EqualVec(batch[t2], InterpWeights(f, xs, target)) {
			t.Fatalf("batch weights for target %d diverge from single-target path", target)
		}
	}
	if got := InterpWeightsBatch(f, nil, targets); len(got) != len(targets) || got[0] != nil {
		t.Fatal("batch over no points should yield nil weight sets")
	}
}

func TestInterpWeightsEmpty(t *testing.T) {
	if w := InterpWeights(f, nil, 5); w != nil {
		t.Fatalf("InterpWeights on no points = %v, want nil", w)
	}
}

func TestLagrangeBasisAllMatchesPerBasis(t *testing.T) {
	for _, start := range []uint64{1, 17} {
		for _, n := range []int{1, 2, 7, 12} {
			xs := f.DistinctPoints(n, start)
			all := LagrangeBasisAll(f, xs)
			if len(all) != n {
				t.Fatalf("LagrangeBasisAll returned %d bases for %d points", len(all), n)
			}
			for j := range xs {
				if !Equal(all[j], LagrangeBasis(f, xs, j)) {
					t.Fatalf("basis %d of %d diverges from per-basis construction", j, n)
				}
			}
		}
	}
}

func TestCombineVectorsManyTerms(t *testing.T) {
	// More contributing vectors than the lazy budget of a small-batch field:
	// the in-place accumulator must reduce between chunks.
	fld := field.MustNew(2147483647) // LazyBatch = 2
	rng := rand.New(rand.NewSource(50))
	const terms, dim = 9, 4
	w := make([]field.Elem, terms)
	vecs := make([][]field.Elem, terms)
	for i := range w {
		w[i] = fld.Q() - 1 // adversarial maximal coefficients
		vecs[i] = make([]field.Elem, dim)
		for c := range vecs[i] {
			vecs[i][c] = fld.Q() - 1 - field.Elem(rng.Intn(2))
		}
	}
	got := CombineVectors(fld, w, vecs)
	want := make([]field.Elem, dim)
	for i := range w {
		for c := range want {
			want[c] = fld.Add(want[c], fld.Mul(w[i], vecs[i][c]))
		}
	}
	if !field.EqualVec(got, want) {
		t.Fatal("CombineVectors diverges from per-element reference")
	}
}

func TestDecodePlansMemoizes(t *testing.T) {
	targets := f.DistinctPoints(4, 1)
	plans := NewDecodePlans(f, targets)
	xs := f.DistinctPoints(6, 10)
	w1 := plans.Weights(xs)
	w2 := plans.Weights(xs)
	if len(w1) != 4 || len(w1[0]) != 6 {
		t.Fatalf("weights shape %dx%d, want 4x6", len(w1), len(w1[0]))
	}
	if &w1[0][0] != &w2[0][0] {
		t.Fatal("repeated Weights call rebuilt the plan instead of hitting the cache")
	}
	for tgt := range targets {
		want := InterpWeights(f, xs, targets[tgt])
		if !field.EqualVec(w1[tgt], want) {
			t.Fatalf("cached weights for target %d diverge from InterpWeights", tgt)
		}
	}
	// A different ordering of the same points is a different plan (weights
	// must align with the caller's results order).
	rev := make([]field.Elem, len(xs))
	for i, x := range xs {
		rev[len(xs)-1-i] = x
	}
	wrev := plans.Weights(rev)
	if field.EqualVec(wrev[1], w1[1]) {
		t.Fatal("reversed point order produced identical weight rows")
	}
}

func TestDecodePlansConcurrent(t *testing.T) {
	plans := NewDecodePlans(f, f.DistinctPoints(3, 1))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				xs := f.DistinctPoints(5, uint64(20+(g+i)%7))
				w := plans.Weights(xs)
				if len(w) != 3 {
					panic("bad weights shape")
				}
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkInterpolate12(b *testing.B) {
	rng := rand.New(rand.NewSource(48))
	p := randPoly(rng, 11)
	xs := f.DistinctPoints(12, 1)
	ys := p.EvalMany(f, xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Interpolate(f, xs, ys)
	}
}
