package poly

import "repro/internal/field"

// Evaluation openings: the commitment layer (internal/commit) treats a
// length-n vector as the values of the unique degree-<n interpolant over a
// fixed point set and opens it at out-of-set targets — the systematic
// Reed–Solomon extension that makes linear-combination claims spot-checkable
// (a wrong claim disagrees with the true codeword on more than half of a
// rate-1/2 extension).

// EvalOpening returns the value at target of the unique degree-<len(xs)
// interpolant through (xs[j], ys[j]). It is InterpWeights followed by one
// inner product; target may coincide with a point of xs (the weights reduce
// to an indicator there).
func EvalOpening(f *field.Field, xs, ys []field.Elem, target field.Elem) field.Elem {
	return f.Dot(InterpWeights(f, xs, target), ys)
}
