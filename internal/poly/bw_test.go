package poly

import (
	"errors"
	"math/rand"
	"testing"
)

// corrupt flips `count` distinct positions of ys to random wrong values.
func corrupt(rng *rand.Rand, ys []uint64, count int) {
	idx := rng.Perm(len(ys))[:count]
	for _, i := range idx {
		orig := ys[i]
		for {
			v := f.Rand(rng)
			if v != orig {
				ys[i] = v
				break
			}
		}
	}
}

func TestBWNoErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	p := randPoly(rng, 8) // k = 9
	xs := f.DistinctPoints(13, 1)
	ys := p.EvalMany(f, xs)
	got, err := DecodeBW(f, xs, ys, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, p) {
		t.Fatal("BW failed with zero errors")
	}
}

func TestBWCorrectsUpToMaxErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(6)
		e := rng.Intn(3)
		n := k + 2*e + rng.Intn(3) // some slack
		p := randPoly(rng, k-1)
		xs := f.DistinctPoints(n, uint64(1+rng.Intn(50)))
		ys := p.EvalMany(f, xs)
		actualErrs := 0
		if e > 0 {
			actualErrs = 1 + rng.Intn(e)
			corrupt(rng, ys, actualErrs)
		}
		got, err := DecodeBW(f, xs, ys, k, e)
		if err != nil {
			t.Fatalf("k=%d e=%d actual=%d n=%d: %v", k, e, actualErrs, n, err)
		}
		if !Equal(got, p) {
			t.Fatalf("k=%d e=%d actual=%d: wrong polynomial", k, e, actualErrs)
		}
	}
}

func TestBWExactBudget(t *testing.T) {
	// n = k + 2e exactly — the paper's LCC constraint (eq. 1) with S=0, T=0.
	rng := rand.New(rand.NewSource(52))
	k, e := 9, 1
	p := randPoly(rng, k-1)
	xs := f.DistinctPoints(k+2*e, 1)
	ys := p.EvalMany(f, xs)
	corrupt(rng, ys, e)
	got, err := DecodeBW(f, xs, ys, k, e)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, p) {
		t.Fatal("BW failed at the exact n = k + 2e budget")
	}
}

func TestBWTooFewPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := randPoly(rng, 8)
	xs := f.DistinctPoints(10, 1)
	ys := p.EvalMany(f, xs)
	// k + 2e = 9 + 4 = 13 > 10 points: must refuse.
	if _, err := DecodeBW(f, xs, ys, 9, 2); !errors.Is(err, ErrDecodeFailed) {
		t.Fatalf("expected ErrDecodeFailed, got %v", err)
	}
}

func TestBWTooManyErrorsFails(t *testing.T) {
	// With e+1 corruptions under an e-error budget, BW must either fail or
	// return a polynomial that is NOT accepted as the original. (It cannot
	// silently return the right answer reliably; here we assert it does not
	// return a WRONG answer claiming success with the true error count
	// within budget — i.e. the returned poly, if any, disagrees with > e
	// points of the original codeword.)
	rng := rand.New(rand.NewSource(54))
	k, e := 5, 1
	p := randPoly(rng, k-1)
	xs := f.DistinctPoints(k+2*e, 1)
	ys := p.EvalMany(f, xs)
	corrupt(rng, ys, e+1)
	got, err := DecodeBW(f, xs, ys, k, e)
	if err == nil && Equal(got, p) {
		t.Fatal("BW claimed to correct more errors than its budget allows (lucky draw would be 1/q^2)")
	}
}

func TestBWZeroErrorBudgetIsInterpolation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := randPoly(rng, 4)
	xs := f.DistinctPoints(5, 1)
	ys := p.EvalMany(f, xs)
	got, err := DecodeBW(f, xs, ys, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, p) {
		t.Fatal("BW with e=0 should reduce to interpolation")
	}
}

func TestBWBurstAtStart(t *testing.T) {
	// Errors in the first positions (systematic part) — position must not
	// matter for BW.
	rng := rand.New(rand.NewSource(56))
	k, e := 6, 2
	p := randPoly(rng, k-1)
	xs := f.DistinctPoints(k+2*e, 1)
	ys := p.EvalMany(f, xs)
	for i := 0; i < e; i++ {
		ys[i] = f.Add(ys[i], 1)
	}
	got, err := DecodeBW(f, xs, ys, k, e)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, p) {
		t.Fatal("BW failed on burst errors")
	}
}

func BenchmarkBW12Workers1Error(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	k, e := 9, 1
	p := randPoly(rng, k-1)
	xs := f.DistinctPoints(k+2*e+1, 1)
	ys := p.EvalMany(f, xs)
	corrupt(rng, ys, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBW(f, xs, ys, k, e); err != nil {
			b.Fatal(err)
		}
	}
}
