package avcc

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/simnet"
)

var f = field.Default()

// quietSim is a jitter-free, low-link-latency model so tests with small
// matrices stay compute-dominated and assertions are deterministic.
func quietSim() simnet.Config {
	c := simnet.DefaultConfig()
	c.JitterFrac = 0
	c.LinkLatency = 1e-5
	return c
}

// testData builds the two-round data map {fwd: X, bwd: Xᵀ} of the logreg
// protocol at a small scale.
func testData(rng *rand.Rand, m, d int) (map[string]*fieldmat.Matrix, *fieldmat.Matrix) {
	x := fieldmat.Rand(f, rng, m, d)
	return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}, x
}

func paperOpts(s, m int, dynamic bool) Options {
	return Options{
		Params:  Params{N: 12, K: 9, S: s, M: m, T: 0, DegF: 1},
		Sim:     quietSim(),
		Seed:    1,
		Dynamic: dynamic,
	}
}

func TestFeasibility(t *testing.T) {
	good := []Params{
		{N: 12, K: 9, S: 1, M: 2, DegF: 1},
		{N: 12, K: 9, S: 2, M: 1, DegF: 1},
		{N: 12, K: 9, S: 3, M: 0, DegF: 1},
	}
	for _, p := range good {
		if !p.Feasible() {
			t.Errorf("%+v should be feasible", p)
		}
	}
	bad := Params{N: 12, K: 9, S: 2, M: 2, DegF: 1} // needs 13
	if bad.Feasible() {
		t.Error("S=2,M=2 at N=12,K=9 should be infeasible")
	}
}

func TestNewMasterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	data, _ := testData(rng, 18, 6)
	if _, err := NewMaster(f, paperOpts(2, 2, true), data, nil, nil); err == nil {
		t.Fatal("infeasible params accepted")
	}
	if _, err := NewMaster(f, paperOpts(1, 1, true), nil, nil, nil); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := NewMaster(f, paperOpts(1, 1, true), data, make([]attack.Behavior, 3), nil); err == nil {
		t.Fatal("behaviour count mismatch accepted")
	}
	badSim := paperOpts(1, 1, true)
	badSim.Sim = simnet.Config{}
	if _, err := NewMaster(f, badSim, data, nil, nil); err == nil {
		t.Fatal("invalid sim config accepted")
	}
}

func TestHonestRoundDecodesExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	data, x := testData(rng, 18, 6)
	m, err := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fieldmat.MatVec(f, x, w)
	if !field.EqualVec(out.Decoded, want) {
		t.Fatal("honest AVCC round decoded wrong result")
	}
	if len(out.Byzantine) != 0 {
		t.Fatal("honest round flagged Byzantines")
	}
	if len(out.Used) != 9 {
		t.Fatalf("used %d workers, want threshold 9", len(out.Used))
	}
	// The 3 unconsumed workers are fast spares, not stragglers.
	if out.StragglersObserved != 0 {
		t.Fatalf("observed %d stragglers in a straggler-free cluster", out.StragglersObserved)
	}
}

func TestBothRoundsOfLogregProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	data, x := testData(rng, 18, 27)
	m, err := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 27)
	z, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(z.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("round 1 wrong")
	}
	e := f.RandVec(rng, 18)
	g, err := m.RunRound(context.Background(), "bwd", e, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(g.Decoded, fieldmat.MatVec(f, x.Transpose(), e)) {
		t.Fatal("round 2 wrong")
	}
}

func TestPaddingIndivisibleRows(t *testing.T) {
	// m=20 is not divisible by K=9: the master must pad internally and trim
	// the decoded output back to 20.
	rng := rand.New(rand.NewSource(143))
	x := fieldmat.Rand(f, rng, 20, 5)
	data := map[string]*fieldmat.Matrix{"fwd": x}
	m, err := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 5)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Decoded) != 20 {
		t.Fatalf("decoded length %d, want 20", len(out.Decoded))
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("padded decode wrong")
	}
}

func byzBehaviors(n int, byz map[int]attack.Behavior) []attack.Behavior {
	bs := make([]attack.Behavior, n)
	for i := range bs {
		bs[i] = attack.Honest{}
	}
	for i, b := range byz {
		bs[i] = b
	}
	return bs
}

func TestByzantineDetectedAndExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	data, x := testData(rng, 18, 6)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{
		3: attack.ReverseValue{C: 1},
		7: attack.Constant{V: 42},
	})
	m, err := NewMaster(f, paperOpts(1, 2, true), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Result must be correct despite two Byzantines.
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("decode corrupted by Byzantines")
	}
	for _, id := range out.Used {
		if id == 3 || id == 7 {
			t.Fatalf("Byzantine worker %d was used in decoding", id)
		}
	}
	caught := map[int]bool{}
	for _, id := range out.Byzantine {
		caught[id] = true
	}
	if !caught[3] || !caught[7] {
		t.Fatalf("Byzantines flagged = %v, want {3,7}", out.Byzantine)
	}
}

func TestByzantineBeyondBudgetStillCorrectIfEnoughHonest(t *testing.T) {
	// 3 Byzantines against an M=2 design: AVCC trades straggler tolerance —
	// it waits longer but still decodes correctly because 9 honest workers
	// exist. (LCC in this situation silently corrupts; see baseline tests.)
	rng := rand.New(rand.NewSource(145))
	data, x := testData(rng, 18, 6)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{
		1: attack.Constant{V: 1},
		5: attack.Constant{V: 2},
		9: attack.Constant{V: 3},
	})
	m, err := NewMaster(f, paperOpts(1, 2, true), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("decode wrong with 3 Byzantines and 9 honest workers")
	}
	if len(out.Byzantine) != 3 {
		t.Fatalf("caught %d Byzantines, want 3", len(out.Byzantine))
	}
}

func TestAllDishonestFails(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	data, _ := testData(rng, 18, 6)
	byz := map[int]attack.Behavior{}
	for i := 0; i < 4; i++ { // 4 Byzantine leaves only 8 honest < K=9
		byz[i] = attack.Constant{V: 9}
	}
	m, err := NewMaster(f, paperOpts(1, 2, true), data, byzBehaviors(12, byz), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0); err == nil {
		t.Fatal("round succeeded with fewer honest workers than the threshold")
	} else if !strings.Contains(err.Error(), "verified") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestUnknownRoundKey(t *testing.T) {
	rng := rand.New(rand.NewSource(147))
	data, _ := testData(rng, 18, 6)
	m, _ := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	if _, err := m.RunRound(context.Background(), "nope", f.RandVec(rng, 6), 0); err == nil {
		t.Fatal("unknown key accepted")
	}
}

func TestStragglersNotWaitedFor(t *testing.T) {
	// With S=3 stragglers and an honest cluster, AVCC decodes from the 9
	// fast workers; wall time must be far below a straggler's compute time.
	rng := rand.New(rand.NewSource(148))
	// Compute-dominated sizes so straggling is visible over link latency:
	// shard = 100×300 = 3·10⁴ ops → 0.3 ms honest, 3 ms straggling.
	data, _ := testData(rng, 900, 300)
	m, err := NewMaster(f, paperOpts(3, 0, true), data, nil, attack.NewFixedStragglers(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 300), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range out.Used {
		if id == 0 || id == 1 || id == 2 {
			t.Fatalf("straggler %d used in decode", id)
		}
	}
	if out.StragglersObserved != 3 {
		t.Fatalf("observed %d stragglers, want 3", out.StragglersObserved)
	}
	// A straggler runs 10x the honest compute; the round must finish well
	// before a straggler could even deliver.
	cfg := quietSim()
	shardOps := float64(100 * 300)
	stragglerArrival := cfg.ComputeTime(shardOps, true, nil)
	if out.Breakdown.Wall >= stragglerArrival {
		t.Fatalf("wall %.6f s not faster than straggler %.6f s", out.Breakdown.Wall, stragglerArrival)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	data, _ := testData(rng, 36, 12)
	m, _ := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 12), 0)
	if err != nil {
		t.Fatal(err)
	}
	b := out.Breakdown
	if b.Compute <= 0 || b.Comm <= 0 || b.Verify <= 0 || b.Decode <= 0 {
		t.Fatalf("breakdown has non-positive phases: %v", b)
	}
	if b.Wall < b.Compute || b.Wall < b.Decode {
		t.Fatalf("wall %v below its own phases: %v", b.Wall, b)
	}
}

func TestVerifyTrialsAmplification(t *testing.T) {
	rng := rand.New(rand.NewSource(150))
	data, _ := testData(rng, 18, 6)
	opt := paperOpts(1, 1, true)
	opt.VerifyTrials = 3
	m, err := NewMaster(f, opt, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify time must scale with trials: compare against a 1-trial master.
	m1, _ := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	out1, err := m1.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Breakdown.Verify <= 2*out1.Breakdown.Verify {
		t.Fatalf("3-trial verify %.3g not ~3x of 1-trial %.3g",
			out.Breakdown.Verify, out1.Breakdown.Verify)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	data, _ := testData(rng, 18, 6)
	w := f.RandVec(rng, 6)
	run := func() *Master {
		m, err := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, err := run().RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := run().RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(a.Decoded, b.Decoded) || a.Breakdown.Wall != b.Breakdown.Wall {
		t.Fatal("same seed produced different rounds")
	}
}

func TestDegFValidation(t *testing.T) {
	data := map[string]*fieldmat.Matrix{"fwd": fieldmat.NewMatrix(18, 6)}
	opt := paperOpts(1, 1, true)
	opt.DegF = 0
	if _, err := NewMaster(f, opt, data, nil, nil); err == nil {
		t.Fatal("DegF=0 accepted")
	}
}

func TestOverProvisionedDegreeStillDecodes(t *testing.T) {
	// Configuring DegF=2 for a linear (matvec) round over-provisions the
	// code: the recovery threshold rises to 2(K-1)+1 but the computation is
	// still degree 1, so interpolation from the larger point set remains
	// exact. This guards the master's robustness to conservative degree
	// declarations.
	rng := rand.New(rand.NewSource(170))
	data, x := testData(rng, 12, 6)
	opt := Options{
		Params:  Params{N: 9, K: 4, S: 1, M: 1, DegF: 2}, // threshold 7, N>=9
		Sim:     quietSim(),
		Seed:    1,
		Dynamic: false,
	}
	m, err := NewMaster(f, opt, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("over-provisioned decode wrong")
	}
	if len(out.Used) != 7 {
		t.Fatalf("used %d, want threshold 7", len(out.Used))
	}
}
