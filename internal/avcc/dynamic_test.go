package avcc

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/attack"
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Tests of the dynamic coding rule (paper Section IV, step 5, eq. 16–19)
// and the quarantine behaviour that distinguishes AVCC from Static VCC.

func TestQuarantineRemovesByzantineAndShrinksN(t *testing.T) {
	rng := rand.New(rand.NewSource(160))
	data, x := testData(rng, 18, 6)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{4: attack.Constant{V: 7}})
	m, err := NewMaster(f, paperOpts(2, 1, true), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	if _, err := m.RunRound(context.Background(), "fwd", w, 0); err != nil {
		t.Fatal(err)
	}
	// Quarantine alone is free: the slack A_t = 11 − 2 − 9 = 0 keeps K, so
	// no re-encode happens — the Byzantine's shard is simply never used
	// again (any 9 of the surviving 11 shards still decode).
	cost, recoded := m.FinishIteration(0)
	if recoded || cost != 0 {
		t.Fatalf("quarantine without K change must be free, got cost=%g recoded=%v", cost, recoded)
	}
	n, k := m.Coding()
	if n != 11 || k != 9 {
		t.Fatalf("coding after quarantine = (%d,%d), want (11,9)", n, k)
	}
	for _, id := range m.ActiveWorkers() {
		if id == 4 {
			t.Fatal("quarantined worker still active")
		}
	}
	// The next round must still decode correctly on the recoded cluster.
	out, err := m.RunRound(context.Background(), "fwd", w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("post-recode decode wrong")
	}
	if len(out.Byzantine) != 0 {
		t.Fatal("quarantined worker should no longer produce Byzantine flags")
	}
}

func TestFig5ScenarioRecodesTo11_8(t *testing.T) {
	// The paper's Fig. 5 exemplary scenario: start at (12,9,S=2,M=1); at
	// iteration 1 three stragglers and one Byzantine appear. AVCC must
	// quarantine the Byzantine and re-encode at (11,8).
	rng := rand.New(rand.NewSource(161))
	// Compute-dominated sizes so the waited-for straggler is detectably
	// late (shard 100×120 → 0.12 ms honest vs 1.2 ms straggling).
	data, x := testData(rng, 900, 120)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{11: attack.ReverseValue{C: 1}})
	stragglers := attack.NewFixedStragglers(0, 1, 2)
	m, err := NewMaster(f, paperOpts(2, 1, true), data, behaviors, stragglers)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 120)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("iteration-0 decode wrong")
	}
	// 12 active − 1 Byzantine (processed+rejected) − 9 verified used... the
	// three stragglers arrive last, so the master should have observed
	// straggling (processed < 12).
	if out.StragglersObserved < 2 {
		t.Fatalf("observed %d stragglers, expected >= 2", out.StragglersObserved)
	}
	if _, recoded := m.FinishIteration(0); !recoded {
		t.Fatal("Fig.5 scenario must re-code")
	}
	n, k := m.Coding()
	if n != 11 || k != 8 {
		t.Fatalf("coding = (%d,%d), want (11,8) as in the paper's Fig. 5", n, k)
	}
	// After the re-code, 8 of the 11 active workers are non-stragglers:
	// decode must not wait for any straggler.
	out, err = m.RunRound(context.Background(), "fwd", w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("post-recode decode wrong")
	}
	for _, id := range out.Used {
		if id <= 2 {
			t.Fatalf("straggler %d on the critical path after re-code", id)
		}
	}
}

func TestStaticVCCNeverRecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	data, x := testData(rng, 18, 6)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{4: attack.Constant{V: 7}})
	m, err := NewMaster(f, paperOpts(2, 1, false), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "static-vcc" {
		t.Fatalf("Name = %q", m.Name())
	}
	w := f.RandVec(rng, 6)
	for iter := 0; iter < 3; iter++ {
		out, err := m.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
			t.Fatal("static VCC decode wrong")
		}
		// Verification still rejects the Byzantine every single iteration.
		if len(out.Byzantine) != 1 || out.Byzantine[0] != 4 {
			t.Fatalf("iter %d: Byzantine flags %v, want [4]", iter, out.Byzantine)
		}
		if cost, recoded := m.FinishIteration(iter); recoded || cost != 0 {
			t.Fatal("static VCC must never re-code")
		}
		n, k := m.Coding()
		if n != 12 || k != 9 {
			t.Fatalf("static VCC coding drifted to (%d,%d)", n, k)
		}
	}
}

func TestNoRecodeWhenNothingObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	data, _ := testData(rng, 18, 6)
	m, _ := NewMaster(f, paperOpts(1, 1, true), data, nil, nil)
	if _, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 6), 0); err != nil {
		t.Fatal(err)
	}
	// No stragglers, no Byzantines: slack A_t = 12 − 0 − 9 = 3 ≥ 0.
	if cost, recoded := m.FinishIteration(0); recoded || cost != 0 {
		t.Fatal("healthy iteration must not re-code")
	}
	n, k := m.Coding()
	if n != 12 || k != 9 {
		t.Fatalf("coding changed to (%d,%d) without cause", n, k)
	}
}

func TestPregeneratedCodingsCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(164))
	// A K-changing scenario (3 stragglers + 1 Byzantine, as Fig. 5) so a
	// real re-encode happens.
	data, _ := testData(rng, 900, 120)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{4: attack.Constant{V: 7}})
	stragglers := attack.NewFixedStragglers(0, 1, 2)

	run := func(pregen bool) float64 {
		opt := paperOpts(2, 1, true)
		opt.PregeneratedCodings = pregen
		m, err := NewMaster(f, opt, data, behaviors, stragglers)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunRound(context.Background(), "fwd", f.RandVec(rng, 120), 0); err != nil {
			t.Fatal(err)
		}
		cost, recoded := m.FinishIteration(0)
		if !recoded {
			t.Fatal("expected recode")
		}
		return cost
	}
	withEncode := run(false)
	pregen := run(true)
	if pregen >= withEncode {
		t.Fatalf("pre-generated codings cost %.4g >= on-line encode %.4g", pregen, withEncode)
	}
	if pregen <= 0 {
		t.Fatal("redistribution must still cost something")
	}
}

func TestRepeatedAdaptationEventuallyStable(t *testing.T) {
	// Rotating stragglers churn the observed S_t; adaptation must always
	// produce a *valid* code and keep decoding exactly.
	rng := rand.New(rand.NewSource(165))
	data, x := testData(rng, 72, 8)
	m, err := NewMaster(f, paperOpts(3, 0, true), data, nil, attack.Rotating{N: 12, Count: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 8)
	want := fieldmat.MatVec(f, x, w)
	for iter := 0; iter < 6; iter++ {
		out, err := m.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !field.EqualVec(out.Decoded, want) {
			t.Fatalf("iter %d: decode wrong after adaptations", iter)
		}
		m.FinishIteration(iter)
		n, k := m.Coding()
		if k < 1 || n < k {
			t.Fatalf("iter %d: invalid coding (%d,%d)", iter, n, k)
		}
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{-1, 1, -1}, {-1, 2, -1}, {-3, 2, -2}, {3, 2, 1}, {-4, 2, -2}, {4, 2, 2}, {0, 3, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
