package avcc

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
)

// Tests of the T > 0 (privacy) mode and of the master over the real
// concurrency executor.

func TestPrivateModeDecodesExactly(t *testing.T) {
	// T = 1: Lagrange masking is active, threshold rises to K+T = 10, and
	// eq. (2) needs N >= (K+T-1)+S+M+1 = 12 at K=9,S=1,M=1.
	rng := rand.New(rand.NewSource(400))
	data, x := testData(rng, 18, 6)
	opt := Options{
		Params:  Params{N: 12, K: 9, S: 1, M: 1, T: 1, DegF: 1},
		Sim:     quietSim(),
		Seed:    3,
		Dynamic: true,
	}
	m, err := NewMaster(f, opt, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("private-mode decode wrong")
	}
	if len(out.Used) != 10 {
		t.Fatalf("threshold with T=1 should be 10, used %d", len(out.Used))
	}
}

func TestPrivateModeShardsAreMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	data, x := testData(rng, 18, 6)
	opt := Options{
		Params:  Params{N: 12, K: 9, S: 1, M: 1, T: 1, DegF: 1},
		Sim:     quietSim(),
		Seed:    3,
		Dynamic: true,
	}
	m, err := NewMaster(f, opt, data, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks := fieldmat.SplitRows(x, 9)
	for _, w := range m.Workers() {
		sh := w.Shards["fwd"]
		for j, b := range blocks {
			if sh.Equal(b) {
				t.Fatalf("worker %d holds raw block %d despite T=1", w.ID, j)
			}
		}
	}
}

func TestPrivateModeByzantineStillCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	data, x := testData(rng, 18, 6)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{6: attack.Constant{V: 5}})
	opt := Options{
		Params:  Params{N: 12, K: 9, S: 0, M: 1, T: 1, DegF: 1},
		Sim:     quietSim(),
		Seed:    3,
		Dynamic: true,
	}
	m, err := NewMaster(f, opt, data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := f.RandVec(rng, 6)
	out, err := m.RunRound(context.Background(), "fwd", w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, w)) {
		t.Fatal("private-mode decode corrupted")
	}
	if len(out.Byzantine) != 1 || out.Byzantine[0] != 6 {
		t.Fatalf("flags %v, want [6]", out.Byzantine)
	}
}

func TestInfeasiblePrivateParamsRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	data, _ := testData(rng, 18, 6)
	opt := Options{
		Params: Params{N: 12, K: 9, S: 2, M: 1, T: 1, DegF: 1}, // needs 13
		Sim:    quietSim(),
	}
	if _, err := NewMaster(f, opt, data, nil, nil); err == nil {
		t.Fatal("infeasible T=1 params accepted")
	}
}

func TestMasterOverGoExecutor(t *testing.T) {
	// Real goroutine concurrency instead of virtual time: outputs must be
	// identical; Byzantine results must never be used.
	rng := rand.New(rand.NewSource(404))
	data, x := testData(rng, 36, 8)
	behaviors := byzBehaviors(12, map[int]attack.Behavior{4: attack.ReverseValue{C: 1}})
	m, err := NewMaster(f, paperOpts(1, 2, true), data, behaviors, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.SetExecutor(&cluster.GoExecutor{
		F:              f,
		Workers:        m.Workers(),
		Stragglers:     attack.NewFixedStragglers(0),
		StragglerDelay: 20 * time.Millisecond,
	})
	w := f.RandVec(rng, 8)
	want := fieldmat.MatVec(f, x, w)
	for iter := 0; iter < 2; iter++ {
		out, err := m.RunRound(context.Background(), "fwd", w, iter)
		if err != nil {
			t.Fatal(err)
		}
		if !field.EqualVec(out.Decoded, want) {
			t.Fatalf("iter %d: decode wrong over GoExecutor", iter)
		}
		for _, id := range out.Used {
			if id == 4 {
				t.Fatal("Byzantine used in decode")
			}
		}
	}
}
