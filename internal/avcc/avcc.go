// Package avcc implements the paper's primary contribution: the Adaptive
// Verifiable Coded Computing master (Section IV).
//
// AVCC decouples the three concerns that LCC couples into one code:
//
//   - Stragglers and privacy are handled by the Lagrange/MDS encoding
//     (internal/lcc): any recovery-threshold-many results decode.
//   - Byzantine workers are handled orthogonally by per-worker Freivalds
//     verification (internal/verify): every arriving result is checked in
//     O(m+d) before it is allowed into the decoder, so a Byzantine costs
//     one extra worker instead of LCC's two (eq. 2 vs eq. 1).
//   - Persistent stragglers/Byzantines trigger dynamic re-coding
//     (eq. 16–19): the master shrinks (N_t, K_t), re-encodes, and
//     redistributes, trading redundant work for tail latency.
//
// The master processes worker results strictly in arrival order, verifying
// each as it lands (the paper: verification "can start as soon as the first
// node responds"), and decodes the moment the recovery threshold of
// *verified* results is reached. Workers that fail verification are
// quarantined; workers that had not arrived by decode time are the observed
// stragglers S_t feeding the adaptation rule.
package avcc

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/commit"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/lcc"
	"repro/internal/simnet"
	"repro/internal/verify"
)

// Params are the coding-theoretic knobs of an AVCC deployment.
type Params struct {
	// N is the total number of workers.
	N int
	// K is the initial code dimension (data split count).
	K int
	// S is the straggler budget.
	S int
	// M is the Byzantine budget.
	M int
	// T is the collusion/privacy budget (random masks).
	T int
	// DegF is the degree of the computed polynomial (1 for the paper's
	// logistic-regression matvec rounds).
	DegF int
	// VerifyTrials amplifies Freivalds soundness to (1/q)^trials;
	// 0 means the paper's single trial.
	VerifyTrials int
}

// Feasible reports whether the parameters satisfy the AVCC bound (eq. 2):
// N ≥ (K+T−1)·deg f + S + M + 1.
func (p Params) Feasible() bool {
	return p.N >= lcc.RequiredWorkersAVCC(p.K, p.T, p.S, p.M, p.DegF)
}

func (p Params) trials() int {
	if p.VerifyTrials <= 0 {
		return 1
	}
	return p.VerifyTrials
}

// Options configure a master beyond the coding parameters.
type Options struct {
	Params
	// Sim is the latency model used for virtual-time accounting.
	Sim simnet.Config
	// Seed drives all master-side randomness (verification keys, privacy
	// masks, jitter) for reproducible runs.
	Seed int64
	// Dynamic enables the dynamic re-coding of Section IV (step 5).
	// Disabled it yields the paper's "Static VCC" comparison point:
	// verification still rejects Byzantine results every iteration, but the
	// code never changes and no worker is ever removed.
	Dynamic bool
	// PregeneratedCodings models the paper's mitigation of generating
	// encoded datasets for multiple coding configurations offline: when
	// set, a re-code charges only shard redistribution, not re-encoding.
	PregeneratedCodings bool
	// Receipts turns on the committed-verification plane: the master
	// Merkle-commits every data matrix once, workers ship output
	// commitments, and every round issues a tenant-verifiable
	// commit.Receipt. Requires T == 0 (the receipt's attribution step
	// interpolates over the systematic points; privacy masks would make the
	// committed data unpredictable from the digest).
	Receipts bool
	// DeterministicKeys derives the secret Freivalds vectors from Seed
	// instead of the crypto/rand default — for reproducible tests and
	// benchmarks only; a guessable key voids the verification guarantee.
	DeterministicKeys bool
}

// Master is the AVCC main server.
type Master struct {
	f   *field.Field
	opt Options
	rng *rand.Rand

	// data holds the full (unencoded) matrix per round key; the master
	// needs it to re-encode under a new (N_t, K_t).
	data map[string]*fieldmat.Matrix
	// origRows remembers each key's true row count before padding.
	origRows map[string]int

	workers []*cluster.Worker
	exec    cluster.Executor

	// Current coding state.
	nCur, kCur int
	code       *lcc.Code
	// active lists the non-quarantined worker IDs.
	active []int
	// codePos maps worker ID → its shard's position in the current code.
	// Quarantining removes a worker from active but leaves the remaining
	// positions valid (the whole point of MDS: any threshold-many of the
	// surviving shards still decode) — only a re-encode reassigns positions.
	codePos map[int]int
	// keys[key][workerID] is the Freivalds key for that worker's shard.
	keys        map[string][]*verify.AmplifiedKey
	keySrc      verify.Source
	quarantined map[int]bool
	// issuer builds round receipts when Options.Receipts is set.
	issuer *commit.Issuer

	// Per-iteration observations feeding the adaptation rule. obsIter is the
	// iteration the observations belong to: a round starting a NEW iteration
	// clears them first, so observations stranded by a failed iteration (one
	// whose FinishIteration the caller rightly skipped) cannot bleed into the
	// next iteration's adaptation decision.
	obsIter        int
	iterByzantine  map[int]bool
	iterStragglers int
}

// NewMaster builds an AVCC deployment: N workers with the given behaviours,
// data encoded at (N, K), verification keys generated, and a virtual
// executor wired to the straggler schedule. data maps round keys to the
// full matrices (the logistic-regression protocol passes {"fwd": X,
// "bwd": Xᵀ}). behaviors may be nil (all honest) or length N.
func NewMaster(f *field.Field, opt Options, data map[string]*fieldmat.Matrix,
	behaviors []attack.Behavior, stragglers attack.StragglerSchedule) (*Master, error) {
	if !opt.Feasible() {
		return nil, fmt.Errorf("avcc: params %+v violate N >= (K+T-1)degF+S+M+1 = %d",
			opt.Params, lcc.RequiredWorkersAVCC(opt.K, opt.T, opt.S, opt.M, opt.DegF))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("avcc: no data matrices supplied")
	}
	if behaviors != nil && len(behaviors) != opt.N {
		return nil, fmt.Errorf("avcc: %d behaviours for %d workers", len(behaviors), opt.N)
	}
	if !opt.Sim.Validate() {
		return nil, fmt.Errorf("avcc: invalid latency model")
	}
	m := &Master{
		f:           f,
		opt:         opt,
		rng:         rand.New(rand.NewSource(opt.Seed)),
		data:        data,
		origRows:    make(map[string]int, len(data)),
		workers:     make([]*cluster.Worker, opt.N),
		quarantined: make(map[int]bool),
	}
	m.keySrc = verify.Crypto()
	if opt.DeterministicKeys {
		m.keySrc = verify.Seeded(m.rng)
	}
	if opt.Receipts {
		if opt.T > 0 {
			return nil, fmt.Errorf("avcc: receipts require T == 0 (got T = %d)", opt.T)
		}
		m.issuer = commit.NewIssuer(f, m.Name())
	}
	for key, x := range data {
		m.origRows[key] = x.Rows
		if m.issuer != nil {
			m.issuer.Commit(key, x)
		}
	}
	for i := range m.workers {
		m.workers[i] = cluster.NewWorker(i)
		if behaviors != nil {
			m.workers[i].Behavior = behaviors[i]
		}
	}
	m.active = make([]int, opt.N)
	for i := range m.active {
		m.active[i] = i
	}
	if _, _, err := m.installCoding(opt.N, opt.K); err != nil {
		return nil, err
	}
	ve := cluster.NewVirtualExecutor(f, opt.Sim, m.workers, stragglers, opt.Seed+1)
	ve.CommitOutputs = opt.Receipts
	m.exec = ve
	m.resetIterObservations()
	return m, nil
}

// ReceiptDigests implements commit.DigestProvider: the public digest of
// every committed round key (nil when receipts are disabled).
func (m *Master) ReceiptDigests() map[string][]commit.Digest {
	if m.issuer == nil {
		return nil
	}
	return m.issuer.Digests()
}

// SetExecutor swaps the executor (tests and real-transport runs).
func (m *Master) SetExecutor(e cluster.Executor) { m.exec = e }

// Workers exposes the master's worker objects so real-transport deployments
// (rpccluster, cmd/avccdemo) can ship the encoded shards to the matching
// remote endpoints.
func (m *Master) Workers() []*cluster.Worker { return m.workers }

// Name implements cluster.Master.
func (m *Master) Name() string {
	if m.opt.Dynamic {
		return "avcc"
	}
	return "static-vcc"
}

// Coding returns the current (N_t, K_t).
func (m *Master) Coding() (n, k int) { return m.nCur, m.kCur }

// ActiveWorkers returns a copy of the current non-quarantined worker IDs.
func (m *Master) ActiveWorkers() []int { return append([]int(nil), m.active...) }

// installCoding (re)encodes every data key at (n, k), assigns shards to the
// currently active workers, regenerates verification keys, and returns the
// total encode op count and total distributed elements for cost accounting.
func (m *Master) installCoding(n, k int) (encodeOps, distElems float64, err error) {
	code, err := lcc.New(m.f, n, k, m.opt.T, m.opt.DegF)
	if err != nil {
		return 0, 0, fmt.Errorf("avcc: cannot build (%d,%d) code: %w", n, k, err)
	}
	if len(m.active) != n {
		return 0, 0, fmt.Errorf("avcc: %d active workers for code length %d", len(m.active), n)
	}
	newKeys := make(map[string][]*verify.AmplifiedKey, len(m.data))
	newPos := make(map[int]int, len(m.active))
	for pos, id := range m.active {
		newPos[id] = pos
	}
	trials := m.opt.trials()
	for key, x := range m.data {
		padded := fieldmat.PadRows(x, k)
		shards, err := code.EncodeMatrix(padded, m.rng)
		if err != nil {
			return 0, 0, fmt.Errorf("avcc: encode %q: %w", key, err)
		}
		// Encoding each shard combines K+T blocks of shard-size elements.
		shardElems := float64(shards[0].Rows) * float64(shards[0].Cols)
		encodeOps += float64(k+m.opt.T) * shardElems * float64(n)
		keys := make([]*verify.AmplifiedKey, len(m.workers))
		for pos, id := range m.active {
			m.workers[id].Shards[key] = shards[pos]
			keys[id] = verify.NewAmplifiedKey(m.f, m.keySrc, shards[pos], trials)
			distElems += shardElems
		}
		// Key generation is trials × one pass over the shard.
		encodeOps += float64(trials) * shardElems * float64(n)
		newKeys[key] = keys
	}
	m.code = code
	m.nCur, m.kCur = n, k
	m.keys = newKeys
	m.codePos = newPos
	return encodeOps, distElems, nil
}

func (m *Master) resetIterObservations() {
	m.iterByzantine = make(map[int]bool)
	m.iterStragglers = 0
}

// RunRound implements cluster.Master: broadcast input for the round key,
// verify results in arrival order, decode from the first threshold-many
// verified results. It is the batch-of-one projection of RunRoundBatch, so
// the two paths cannot drift.
func (m *Master) RunRound(ctx context.Context, key string, input []field.Elem, iter int) (*cluster.RoundOutput, error) {
	b, err := m.RunRoundBatch(ctx, key, [][]field.Elem{input}, iter)
	if err != nil {
		return nil, err
	}
	return b.Round(0), nil
}

// RunRoundBatch implements cluster.Master: the whole batch runs as ONE coded
// round — inputs packed into one broadcast, each worker computing the full
// batch against its shard, ONE stacked Freivalds sweep per arriving result
// (verify.CheckBatch), and one decode whose interpolation weights are shared
// by every vector in the batch.
func (m *Master) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	if _, ok := m.data[key]; !ok {
		return nil, fmt.Errorf("avcc: unknown round key %q", key)
	}
	packed, _, err := cluster.PackInputs(inputs)
	if err != nil {
		return nil, fmt.Errorf("avcc: %w", err)
	}
	if iter != m.obsIter {
		// First round of a new iteration: discard observations stranded by a
		// previous iteration whose FinishIteration never ran (failed rounds
		// skip adaptation). Within one iteration, rounds still accumulate.
		m.resetIterObservations()
		m.obsIter = iter
	}
	batch := len(inputs)
	results := m.exec.RunRound(ctx, key, packed, batch, iter, m.active)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("avcc: round cancelled: %w", err)
	}
	threshold := m.code.Threshold()
	trials := float64(m.opt.trials())

	out := &cluster.BatchOutput{}
	var masterFree float64 // when the master finishes its current check
	var verifiedWorkers []int
	var verifiedOutputs [][]field.Elem
	var verifiedCommits [][]byte
	var maxCompute, maxComm float64
	var processedArrivals []float64

	for _, r := range results {
		if len(verifiedWorkers) == threshold {
			break
		}
		processedArrivals = append(processedArrivals, r.ArriveAt)
		if r.Err != nil {
			return nil, fmt.Errorf("avcc: worker %d failed: %w", r.Worker, r.Err)
		}
		start := r.ArriveAt
		if masterFree > start {
			start = masterFree
		}
		checkOps := trials * float64(len(packed)+len(r.Output))
		checkTime := m.opt.Sim.MasterTime(checkOps)
		masterFree = start + checkTime
		out.Breakdown.Verify += checkTime

		if m.keys[key][r.Worker].CheckBatch(packed, r.Output, batch) {
			verifiedWorkers = append(verifiedWorkers, r.Worker)
			verifiedOutputs = append(verifiedOutputs, r.Output)
			verifiedCommits = append(verifiedCommits, r.Commit)
			if r.ComputeSec > maxCompute {
				maxCompute = r.ComputeSec
			}
			if r.CommSec > maxComm {
				maxComm = r.CommSec
			}
		} else {
			out.Byzantine = append(out.Byzantine, r.Worker)
			m.iterByzantine[r.Worker] = true
		}
	}
	if len(verifiedWorkers) < threshold {
		return nil, fmt.Errorf("avcc: only %d verified results, need %d (Byzantines exceed budget)",
			len(verifiedWorkers), threshold)
	}

	// Translate worker IDs to code positions for the decoder.
	codeIdx := make([]int, len(verifiedWorkers))
	for i, id := range verifiedWorkers {
		codeIdx[i] = m.codePos[id]
	}
	blocks, err := m.code.DecodeVectors(codeIdx, verifiedOutputs)
	if err != nil {
		return nil, fmt.Errorf("avcc: decode: %w", err)
	}
	var decodedLen int
	for _, blk := range blocks {
		decodedLen += len(blk)
	}
	decodeOps := float64(threshold)*float64(decodedLen) + float64(threshold*threshold)
	decodeTime := m.opt.Sim.MasterTime(decodeOps)

	out.Outputs = cluster.UnpackBlocks(blocks, batch, m.origRows[key])
	out.Used = verifiedWorkers

	if m.issuer != nil {
		// The receipt binds exactly what the decode consumed: the verified
		// threshold set, at the CURRENT (possibly re-coded) split.
		rw := make([]commit.RoundWorker, len(verifiedWorkers))
		alphas := m.code.Alphas()
		for i, id := range verifiedWorkers {
			rw[i] = commit.RoundWorker{
				ID:     id,
				Alpha:  alphas[m.codePos[id]],
				Output: verifiedOutputs[i],
				Commit: verifiedCommits[i],
			}
		}
		rec, rerr := m.issuer.Issue(commit.Round{
			Key: key, Iter: iter, Batch: batch,
			K: m.kCur, BlockRows: (m.origRows[key] + m.kCur - 1) / m.kCur,
			Inputs: packed, Outputs: out.Outputs, Workers: rw,
		})
		if rerr != nil {
			return nil, fmt.Errorf("avcc: receipt: %w", rerr)
		}
		out.Receipt = rec
	}

	// Observed stragglers S_t: workers whose results arrived (or would
	// arrive) anomalously late relative to the round's typical arrival.
	// This covers both stragglers the master skipped AND stragglers it was
	// *forced* to wait for when Byzantines ate its slack (the paper's
	// Fig. 5 scenario) — while NOT counting spare fast workers it simply
	// did not need, nor a fast worker that happened to rank just past the
	// threshold.
	byzSet := make(map[int]bool, len(out.Byzantine))
	for _, id := range out.Byzantine {
		byzSet[id] = true
	}
	med := median(processedArrivals)
	arrived := make(map[int]bool, len(results))
	for _, r := range results {
		arrived[r.Worker] = true
		if r.ArriveAt > stragglerDetectFactor*med && !byzSet[r.Worker] {
			out.StragglersObserved++
		}
	}
	// Active workers with no result at all — crashed nodes, dropped
	// messages — are stragglers with infinite arrival time: erasures the
	// adaptation rule must see, or churn would never trigger a re-code.
	for _, id := range m.active {
		if !arrived[id] {
			out.StragglersObserved++
		}
	}
	if out.StragglersObserved > m.iterStragglers {
		m.iterStragglers = out.StragglersObserved
	}
	out.Breakdown.Compute = maxCompute
	out.Breakdown.Comm = maxComm
	out.Breakdown.Decode = decodeTime
	out.Breakdown.Wall = masterFree + decodeTime
	return out, nil
}

// FinishIteration implements the dynamic coding rule (eq. 16–19). With M_t
// Byzantines caught and S_t stragglers observed this iteration, the slack
//
//	A_t = N_t − M_t − S_t − threshold(K_t)  (+1 −1 bookkeeping folded in)
//
// decides the next scheme: quarantine the Byzantines (N_{t+1} = N_t − M_t)
// and, when A_t < 0, shrink K by ⌊A_t/deg f⌋ so the remaining honest
// non-stragglers suffice to decode without tail latency.
func (m *Master) FinishIteration(iter int) (recodeCost float64, recoded bool) {
	defer m.resetIterObservations()
	if !m.opt.Dynamic {
		return 0, false
	}
	mt := len(m.iterByzantine)
	st := m.iterStragglers

	// Quarantine is free: flagged workers are dropped from the active pool
	// but the surviving shards keep their code positions — the MDS property
	// guarantees any threshold-many of them still decode. Only a change of
	// K forces a re-encode.
	if mt > 0 {
		keep := m.active[:0]
		for _, id := range m.active {
			if m.iterByzantine[id] {
				m.quarantined[id] = true
				continue
			}
			keep = append(keep, id)
		}
		m.active = keep
		m.nCur = len(m.active)
	}
	nNext := len(m.active)

	// Slack beyond what decode needs: how many more stragglers we could
	// absorb. threshold = (K+T-1)degF + 1 results must arrive and verify.
	at := nNext - st - m.code.Threshold()
	kNext := m.kCur
	if at < 0 {
		kNext = m.kCur + floorDiv(at, m.opt.DegF)
		if kNext < 1 {
			kNext = 1
		}
	}
	if kNext == m.kCur {
		return 0, false
	}
	// A valid code must still exist; if not, keep the old one (degenerate
	// end state: fewer workers than the minimum — surface at next RunRound).
	if nNext < lcc.RecoveryThreshold(kNext, m.opt.T, m.opt.DegF) || nNext < 1 {
		return 0, false
	}
	encodeOps, distElems, err := m.installCoding(nNext, kNext)
	if err != nil {
		return 0, false
	}
	// The one-time cost: redistributing every worker's new shard (the 41 s
	// of the paper's Fig. 5). Re-encoding itself is additionally charged
	// unless coding configurations were pre-generated offline (the paper's
	// stated strategy, Section IV step 5).
	cost := m.opt.Sim.CommTime(0)*float64(nNext) + distElems/m.opt.Sim.LinkElemsPerSec
	if !m.opt.PregeneratedCodings {
		cost += m.opt.Sim.MasterTime(encodeOps)
	}
	return cost, true
}

// stragglerDetectFactor flags a worker as a straggler when its result
// arrived later than this multiple of the round's median consumed arrival.
// The paper's stragglers are up to ~10× slow on compute; 2× separates them
// from jitter even when link time dilutes the compute gap.
const stragglerDetectFactor = 2.0

// median returns the median of xs (0 for empty input). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// Insertion sort: the slice is at most N (≈ a dozen) entries.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/2]
}

// floorDiv is integer division rounding toward negative infinity (Go's /
// truncates toward zero, which would under-shrink K for negative slack).
func floorDiv(a, b int) int {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
