package repro_test

import (
	"context"
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/linreg"
	"repro/internal/logreg"
	"repro/internal/scheme"
)

// Cross-system integration invariants that tie the whole stack together.

func integrationData(t *testing.T) *dataset.Data {
	t.Helper()
	cfg := dataset.DefaultConfig()
	cfg.TrainN, cfg.TestN, cfg.Features, cfg.Informative = 180, 60, 60, 16
	cfg.Separation = 1.0
	ds, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func honestMasters(t *testing.T, ds *dataset.Data) map[string]cluster.Master {
	t.Helper()
	f := field.Default()
	x := ds.FieldMatrix(f)
	mk := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	}
	cfg := scheme.NewConfig(
		scheme.WithCoding(12, 9),
		scheme.WithBudgets(1, 1, 0),
		scheme.WithSim(experiments.CI().Sim),
		scheme.WithSeed(21),
	)
	masters := make(map[string]cluster.Master, 3)
	for _, name := range []string{"avcc", "lcc", "uncoded"} {
		m, err := scheme.New(name, f, cfg, mk(), nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		masters[name] = m
	}
	return masters
}

// TestHonestSchemesAgreeBitExactly: in a fault-free environment all three
// schemes decode every round exactly, so the weight trajectories — and
// therefore the trained models — must be IDENTICAL across schemes. This is
// the strongest cross-system consistency check the protocol admits: any
// encode/verify/decode discrepancy in any scheme breaks it.
func TestHonestSchemesAgreeBitExactly(t *testing.T) {
	ds := integrationData(t)
	f := field.Default()
	cfg := logreg.DefaultTrainConfig()
	cfg.Iterations = 6

	var reference []float64
	for name, master := range honestMasters(t, ds) {
		_, model, err := logreg.TrainDistributed(context.Background(), f, master, ds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if reference == nil {
			reference = model.W
			continue
		}
		for i := range model.W {
			if model.W[i] != reference[i] {
				t.Fatalf("%s diverged from reference at weight %d: %v vs %v",
					name, i, model.W[i], reference[i])
			}
		}
	}
}

// TestLinregAndLogregShareMasters: the same master instance can train both
// applications back to back (key reuse across protocols).
func TestLinregAndLogregShareMasters(t *testing.T) {
	ds := integrationData(t)
	f := field.Default()
	masters := honestMasters(t, ds)
	m := masters["avcc"]

	logCfg := logreg.DefaultTrainConfig()
	logCfg.Iterations = 4
	if _, _, err := logreg.TrainDistributed(context.Background(), f, m, ds, logCfg); err != nil {
		t.Fatal(err)
	}
	linCfg := linreg.DefaultTrainConfig()
	linCfg.Iterations = 4
	series, model, err := linreg.TrainDistributed(context.Background(), f, m, ds, linCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Records) != 4 {
		t.Fatal("linreg series wrong length")
	}
	if math.IsNaN(model.MSE(ds.TrainX, ds.TrainY, ds.Rows, ds.Cols)) {
		t.Fatal("NaN loss after shared-master training")
	}
}

// TestAttackedLogregOrdering: under the constant attack with M beyond LCC's
// budget, the accuracy ordering AVCC > {LCC, uncoded} must hold end to end
// (the root claim of the paper's Fig. 3).
func TestAttackedLogregOrdering(t *testing.T) {
	ds := integrationData(t)
	f := field.Default()
	x := ds.FieldMatrix(f)
	mk := func() map[string]*fieldmat.Matrix {
		return map[string]*fieldmat.Matrix{"fwd": x, "bwd": x.Transpose()}
	}
	sim := experiments.CI().Sim
	behaviors := func(n int) []attack.Behavior {
		bs := make([]attack.Behavior, n)
		for i := range bs {
			bs[i] = attack.Honest{}
		}
		bs[3] = attack.Constant{V: experiments.ConstantAttackValue}
		if n > 7 {
			bs[7] = attack.Constant{V: experiments.ConstantAttackValue}
		}
		return bs
	}
	cfg := logreg.DefaultTrainConfig()
	cfg.Iterations = 8

	mkCfg := func(s, m int) scheme.Config {
		return scheme.NewConfig(
			scheme.WithCoding(12, 9),
			scheme.WithBudgets(s, m, 0),
			scheme.WithSim(sim),
			scheme.WithSeed(23),
			scheme.WithPregeneratedCodings(true),
		)
	}
	avccM, err := scheme.New("avcc", f, mkCfg(1, 2), mk(), behaviors(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	lccM, err := scheme.New("lcc", f, mkCfg(1, 1), mk(), behaviors(12), nil)
	if err != nil {
		t.Fatal(err)
	}
	uncodedM, err := scheme.New("uncoded", f, mkCfg(1, 1), mk(), behaviors(9), nil)
	if err != nil {
		t.Fatal(err)
	}

	acc := map[string]float64{}
	for name, m := range map[string]cluster.Master{"avcc": avccM, "lcc": lccM, "uncoded": uncodedM} {
		_, model, err := logreg.TrainDistributed(context.Background(), f, m, ds, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc[name] = model.Accuracy(ds.TestX, ds.TestY, ds.TestRows, ds.Cols)
	}
	if acc["avcc"] < 0.8 {
		t.Fatalf("AVCC accuracy %.3f too low", acc["avcc"])
	}
	if acc["lcc"] >= acc["avcc"] {
		t.Fatalf("overwhelmed LCC (%.3f) should trail AVCC (%.3f)", acc["lcc"], acc["avcc"])
	}
	if acc["uncoded"] >= acc["avcc"] {
		t.Fatalf("unprotected uncoded (%.3f) should trail AVCC (%.3f)", acc["uncoded"], acc["avcc"])
	}
}
