package repro_test

// Serving-layer benchmark: closed-loop throughput of scheme.Service over
// the virtual-executor AVCC deployment at CI scale, along two axes:
//
//   - Coalescing (batch=1/8/32 on the small matrix): the value of packing
//     many requests into ONE coded round (one broadcast, one verification
//     sweep, one decode) instead of running rounds back to back.
//   - Sharding (shards=1/2 at batch=32 on a compute-heavy matrix under the
//     compute-dominated latency model): the value of splitting the rows
//     across independent coded groups whose rounds run concurrently.
//
// Two throughputs are reported. Host req/s is wall-clock on the CI box and
// measures the service machinery; virtual req/s divides requests by the
// summed per-round virtual wall (Breakdown.Wall — for a sharded master the
// slowest group's wall, since groups run in parallel) and measures the
// DEPLOYMENT the virtual executor models, independent of how many host
// cores the benchmark happens to get. Shard scaling is a deployment
// property, so the ≥1.8x expectation at 2 shards is on the virtual metric;
// on a multi-core host the host metric follows it.
//
// 32 concurrent clients submit matvec solves back to back. When the full
// matrix runs (as `go test -bench BenchmarkServing` does), both
// throughputs and the p50/p99 submit→resolve latencies are written to
// BENCH_serving.json, the committed serving-trajectory artifact.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
	"repro/internal/simnet"
)

// servingConfig is one point of the benchmark sweep.
type servingConfig struct {
	Batch  int `json:"batch"`
	Shards int `json:"shards"`
	// Rows/Cols describe the model matrix: the coalescing axis runs the
	// tiny 54x18 model (fixed costs dominate), the sharding axis a
	// compute-heavy 2880x96 model (worker compute dominates — the regime
	// sharding exists for).
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Sim names the latency model: "default" or "compute-bound" (link
	// latency cut to 10us, as in the scenario conformance suite).
	Sim string `json:"sim"`
}

// servingRow is one BENCH_serving.json entry.
type servingRow struct {
	servingConfig
	Requests      uint64  `json:"requests"`
	Rounds        uint64  `json:"rounds"`
	ReqPerSec     float64 `json:"req_per_sec"`
	VirtReqPerSec float64 `json:"virt_req_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

var (
	servingMu      sync.Mutex
	servingResults = map[servingConfig]servingRow{}
)

// servingConfigs is the benchmark's sweep: the MaxBatch axis, then the
// shard axis (whose shards=1 arm is the like-for-like baseline for the
// ≥1.8x virtual-throughput expectation at 2 shards).
var servingConfigs = []servingConfig{
	{Batch: 1, Shards: 1, Rows: 54, Cols: 18, Sim: "default"},
	{Batch: 8, Shards: 1, Rows: 54, Cols: 18, Sim: "default"},
	{Batch: 32, Shards: 1, Rows: 54, Cols: 18, Sim: "default"},
	{Batch: 32, Shards: 1, Rows: 2880, Cols: 96, Sim: "compute-bound"},
	{Batch: 32, Shards: 2, Rows: 2880, Cols: 96, Sim: "compute-bound"},
}

func (c servingConfig) simConfig() simnet.Config {
	sim := simnet.DefaultConfig()
	if c.Sim == "compute-bound" {
		sim.LinkLatency = 1e-5
	}
	return sim
}

// meteredMaster wraps a master and accumulates the virtual wall time of
// every round it runs, so the benchmark can report deployment (virtual)
// throughput next to host throughput.
type meteredMaster struct {
	scheme.Master
	mu       sync.Mutex
	virtWall float64
}

func (m *meteredMaster) RunRoundBatch(ctx context.Context, key string, inputs [][]field.Elem, iter int) (*cluster.BatchOutput, error) {
	out, err := m.Master.RunRoundBatch(ctx, key, inputs, iter)
	if err == nil {
		m.mu.Lock()
		m.virtWall += out.Breakdown.Wall
		m.mu.Unlock()
	}
	return out, err
}

func (m *meteredMaster) wall() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.virtWall
}

func BenchmarkServing(b *testing.B) {
	const clients = 32
	f := field.Default()

	for _, cfg := range servingConfigs {
		b.Run(fmt.Sprintf("batch=%d/shards=%d/rows=%d", cfg.Batch, cfg.Shards, cfg.Rows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(77))
			x := fieldmat.Rand(f, rng, cfg.Rows, cfg.Cols)
			inner, err := scheme.New("avcc", f, scheme.NewConfig(
				scheme.WithSeed(77),
				scheme.WithShards(cfg.Shards),
				scheme.WithSim(cfg.simConfig()),
			), map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			m := &meteredMaster{Master: inner}
			svc := scheme.NewService(m, scheme.ServiceConfig{
				MaxBatch:   cfg.Batch,
				MaxLinger:  200 * time.Microsecond,
				MaxPending: 4 * clients,
			})
			inputs := make([][]field.Elem, clients)
			for i := range inputs {
				inputs[i] = f.RandVec(rng, x.Cols)
			}

			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ctx := scheme.WithTenant(context.Background(), "bench")
					in := inputs[c]
					for i := c; i < b.N; i += clients {
						fu := svc.Submit(ctx, "fwd", in)
						if _, err := fu.Wait(ctx); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			virtWall := m.wall()
			b.StopTimer()

			// Spot-check one decode per config: serving must stay exact.
			fu := svc.Submit(context.Background(), "fwd", inputs[0])
			out, err := fu.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, inputs[0])) {
				b.Fatal("served decode is not the exact product")
			}
			if err := svc.Close(context.Background()); err != nil {
				b.Fatal(err)
			}

			stats := svc.Stats()
			reqPerSec := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(reqPerSec, "req/s")
			var virtReqPerSec float64
			if virtWall > 0 {
				virtReqPerSec = float64(b.N) / virtWall
				b.ReportMetric(virtReqPerSec, "virt-req/s")
			}
			if stats.Rounds > 0 {
				b.ReportMetric(float64(stats.Requests)/float64(stats.Rounds), "req/round")
			}
			var lat servingRow
			for _, ts := range stats.Tenants {
				if ts.Tenant == "bench" {
					lat.P50Ms = ts.Latency.P50 * 1e3
					lat.P99Ms = ts.Latency.P99 * 1e3
				}
			}
			if b.N > 1 {
				servingMu.Lock()
				servingResults[cfg] = servingRow{
					servingConfig: cfg,
					Requests:      uint64(b.N),
					Rounds:        stats.Rounds,
					ReqPerSec:     reqPerSec,
					VirtReqPerSec: virtReqPerSec,
					P50Ms:         lat.P50Ms,
					P99Ms:         lat.P99Ms,
				}
				servingMu.Unlock()
			}
		})
	}

	servingMu.Lock()
	defer servingMu.Unlock()
	rows := make([]servingRow, 0, len(servingConfigs))
	for _, cfg := range servingConfigs {
		row, ok := servingResults[cfg]
		if !ok {
			b.Logf("skipping BENCH_serving.json: %+v incomplete (smoke run)", cfg)
			return
		}
		rows = append(rows, row)
	}
	// Merge rather than overwrite: BenchmarkTransport owns the "transport"
	// key of the same artifact.
	mergeBenchArtifact(b, "BENCH_serving.json", map[string]any{
		"benchmark": "BenchmarkServing",
		"workload":  "avcc (12,9) virtual executor, 32 closed-loop clients; batch axis on a 54x18 matvec (default sim), shard axis on a 2880x96 matvec (compute-bound sim); virt_req_per_sec is requests over summed per-round virtual wall",
		"rows":      rows,
	})
	b.Logf("wrote BENCH_serving.json (%d configs)", len(rows))
}
