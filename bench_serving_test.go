package repro_test

// Serving-layer benchmark: closed-loop throughput of scheme.Service over
// the virtual-executor AVCC deployment at CI scale, as a function of the
// coalescing cap. 32 concurrent clients submit matvec solves back to back;
// the only variable between sub-benchmarks is ServiceConfig.MaxBatch, so
// the measured ratio is exactly the value of packing many requests into one
// coded round (one broadcast, one verification sweep, one decode) instead
// of running rounds back to back. When the full matrix runs (as
// `go test -bench BenchmarkServing` does), req/s and the p50/p99 submit→
// resolve latencies are written to BENCH_serving.json, the committed
// serving-trajectory artifact.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/fieldmat"
	"repro/internal/scheme"
)

// servingRow is one BENCH_serving.json entry.
type servingRow struct {
	Batch     int     `json:"batch"`
	Requests  uint64  `json:"requests"`
	Rounds    uint64  `json:"rounds"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

var (
	servingMu      sync.Mutex
	servingResults = map[int]servingRow{}
)

// servingBatchSizes is the benchmark's MaxBatch sweep.
var servingBatchSizes = []int{1, 8, 32}

func BenchmarkServing(b *testing.B) {
	const clients = 32
	f := field.Default()
	rng := rand.New(rand.NewSource(77))
	x := fieldmat.Rand(f, rng, 54, 18)

	for _, batch := range servingBatchSizes {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			m, err := scheme.New("avcc", f, scheme.NewConfig(scheme.WithSeed(77)),
				map[string]*fieldmat.Matrix{"fwd": x}, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			svc := scheme.NewService(m, scheme.ServiceConfig{
				MaxBatch:   batch,
				MaxLinger:  200 * time.Microsecond,
				MaxPending: 4 * clients,
			})
			inputs := make([][]field.Elem, clients)
			for i := range inputs {
				inputs[i] = f.RandVec(rng, x.Cols)
			}

			b.ResetTimer()
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					ctx := scheme.WithTenant(context.Background(), "bench")
					in := inputs[c]
					for i := c; i < b.N; i += clients {
						fu := svc.Submit(ctx, "fwd", in)
						if _, err := fu.Wait(ctx); err != nil {
							b.Error(err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			elapsed := time.Since(start)
			b.StopTimer()

			// Spot-check one decode per config: serving must stay exact.
			fu := svc.Submit(context.Background(), "fwd", inputs[0])
			out, err := fu.Wait(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if !field.EqualVec(out.Decoded, fieldmat.MatVec(f, x, inputs[0])) {
				b.Fatal("served decode is not the exact product")
			}
			if err := svc.Close(context.Background()); err != nil {
				b.Fatal(err)
			}

			stats := svc.Stats()
			reqPerSec := float64(b.N) / elapsed.Seconds()
			b.ReportMetric(reqPerSec, "req/s")
			if stats.Rounds > 0 {
				b.ReportMetric(float64(stats.Requests)/float64(stats.Rounds), "req/round")
			}
			var lat servingRow
			for _, ts := range stats.Tenants {
				if ts.Tenant == "bench" {
					lat.P50Ms = ts.Latency.P50 * 1e3
					lat.P99Ms = ts.Latency.P99 * 1e3
				}
			}
			if b.N > 1 {
				servingMu.Lock()
				servingResults[batch] = servingRow{
					Batch:     batch,
					Requests:  uint64(b.N),
					Rounds:    stats.Rounds,
					ReqPerSec: reqPerSec,
					P50Ms:     lat.P50Ms,
					P99Ms:     lat.P99Ms,
				}
				servingMu.Unlock()
			}
		})
	}

	servingMu.Lock()
	defer servingMu.Unlock()
	rows := make([]servingRow, 0, len(servingBatchSizes))
	for _, batch := range servingBatchSizes {
		row, ok := servingResults[batch]
		if !ok {
			b.Logf("skipping BENCH_serving.json: batch=%d incomplete (smoke run)", batch)
			return
		}
		rows = append(rows, row)
	}
	data, err := json.MarshalIndent(map[string]any{
		"benchmark": "BenchmarkServing",
		"workload":  "avcc (12,9) virtual executor, 54x18 matvec, 32 closed-loop clients",
		"rows":      rows,
	}, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("wrote BENCH_serving.json (%d configs)", len(rows))
}
